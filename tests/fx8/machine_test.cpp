#include "fx8/machine.hpp"

#include <gtest/gtest.h>

#include "base/expect.hpp"

namespace repro::fx8 {
namespace {

isa::KernelSpec work_kernel() {
  isa::KernelSpec k;
  k.steps = 8;
  k.compute_cycles = 3;
  k.loads_per_step = 2;
  k.stores_per_step = 1;
  k.working_set_bytes = 64 * 1024;
  return k;
}

TEST(Machine, TicksAdvanceTime) {
  NoFaultMmu mmu;
  Machine machine(MachineConfig::fx8(), mmu);
  EXPECT_EQ(machine.now(), 0u);
  machine.run(100);
  EXPECT_EQ(machine.now(), 100u);
}

TEST(Machine, Fx8HasEightCesTwoBuses) {
  NoFaultMmu mmu;
  Machine machine(MachineConfig::fx8(), mmu);
  EXPECT_EQ(machine.cluster().width(), 8u);
  EXPECT_EQ(machine.config().membus.bus_count, 2u);
  EXPECT_EQ(machine.ips().size(), 2u);
}

TEST(Machine, Fx1IsSingleCe) {
  NoFaultMmu mmu;
  Machine machine(MachineConfig::fx1(), mmu);
  EXPECT_EQ(machine.cluster().width(), 1u);
  EXPECT_EQ(machine.ips().size(), 1u);
}

TEST(Machine, RunsAConcurrentJobEndToEnd) {
  NoFaultMmu mmu;
  Machine machine(MachineConfig::fx8(), mmu);
  isa::ConcurrentLoopPhase loop;
  loop.trip_count = 66;
  loop.body = work_kernel();
  const isa::Program prog = isa::ProgramBuilder("job")
                                .data_base(0x100000)
                                .serial(work_kernel(), 1)
                                .concurrent_loop(loop)
                                .build();
  machine.cluster().load(&prog, 1);
  Cycle used = 0;
  std::uint32_t max_active = 0;
  while (machine.cluster().busy()) {
    machine.tick();
    max_active = std::max(max_active, machine.cluster().active_count());
    ASSERT_LT(++used, 2'000'000u);
  }
  EXPECT_EQ(machine.cluster().stats().iterations_completed, 66u);
  EXPECT_EQ(max_active, 8u);
  EXPECT_GT(machine.shared_cache().stats().accesses, 0u);
}

TEST(Machine, ProbeSurfaceIsConsistent) {
  NoFaultMmu mmu;
  Machine machine(MachineConfig::fx8(), mmu);
  isa::ConcurrentLoopPhase loop;
  loop.trip_count = 40;
  loop.body = work_kernel();
  const isa::Program prog =
      isa::ProgramBuilder("probe").concurrent_loop(loop).build();
  machine.cluster().load(&prog, 1);
  bool saw_busy_bus = false;
  bool saw_mem_traffic = false;
  Cycle used = 0;
  while (machine.cluster().busy()) {
    machine.tick();
    for (CeId ce = 0; ce < 8; ++ce) {
      if (mem::is_busy(machine.ce_bus_op(ce))) {
        saw_busy_bus = true;
      }
    }
    for (std::uint32_t b = 0; b < 2; ++b) {
      if (machine.mem_bus_op(b) != mem::MemBusOp::kIdle) {
        saw_mem_traffic = true;
      }
    }
    ASSERT_LT(++used, 2'000'000u);
  }
  EXPECT_TRUE(saw_busy_bus);
  EXPECT_TRUE(saw_mem_traffic);
}

TEST(Machine, IpTrafficFlowsWithoutClusterWork) {
  NoFaultMmu mmu;
  MachineConfig config = MachineConfig::fx8();
  config.ip.duty = 0.8;
  Machine machine(config, mmu);
  machine.run(100000);
  bool ip_issued = false;
  for (const Ip& ip : machine.ips()) {
    ip_issued |= ip.accesses_issued() > 0;
  }
  EXPECT_TRUE(ip_issued);
  // Cluster idle the whole time: CCB probe shows no activity.
  EXPECT_EQ(machine.active_mask(), 0u);
}

TEST(Machine, DeterministicAcrossInstances) {
  auto run_once = [] {
    NoFaultMmu mmu;
    Machine machine(MachineConfig::fx8(), mmu);
    isa::ConcurrentLoopPhase loop;
    loop.trip_count = 30;
    loop.body = work_kernel();
    loop.body.compute_jitter = 2;
    const isa::Program prog =
        isa::ProgramBuilder("det").concurrent_loop(loop).build();
    machine.cluster().load(&prog, 1);
    while (machine.cluster().busy()) {
      machine.tick();
    }
    return std::pair{machine.now(), machine.shared_cache().stats().misses};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace repro::fx8
