#include "core/export.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace repro::core {
namespace {

AnalyzedSample sample_with(double cw, double miss) {
  AnalyzedSample sample;
  sample.raw.index = 3;
  sample.raw.hw.records = 2560;
  sample.raw.hw.num[8] = 100;
  sample.measures.cw = cw;
  sample.measures.pc = 7.5;
  sample.measures.pc_defined = cw > 0;
  sample.miss_rate = miss;
  sample.bus_busy = 0.25;
  sample.page_fault_rate = 42;
  return sample;
}

std::size_t count_lines(const std::string& text) {
  std::size_t lines = 0;
  for (const char c : text) {
    lines += c == '\n';
  }
  return lines;
}

TEST(Export, FlatCsvHasHeaderAndRows) {
  const std::vector<AnalyzedSample> samples = {sample_with(0.5, 0.01),
                                               sample_with(0.0, 0.0)};
  const std::string csv = samples_to_csv(samples);
  EXPECT_EQ(count_lines(csv), 3u);  // header + 2 rows
  EXPECT_NE(csv.find("sample,cw,pc,pc_defined"), std::string::npos);
  EXPECT_NE(csv.find("0.500000"), std::string::npos);
  EXPECT_NE(csv.find(",num8"), std::string::npos);
}

TEST(Export, UndefinedPcIsEmptyField) {
  const std::vector<AnalyzedSample> samples = {sample_with(0.0, 0.0)};
  const std::string csv = samples_to_csv(samples);
  // pc column empty: "...,,0,..." pattern (pc then pc_defined=0).
  EXPECT_NE(csv.find(",,0,"), std::string::npos);
}

TEST(Export, SessionCsvPrefixesSessionName) {
  SessionResult session;
  session.name = "session-x";
  session.samples = {sample_with(0.4, 0.005)};
  const std::vector<SessionResult> sessions = {session};
  const std::string csv = samples_to_csv(sessions);
  EXPECT_NE(csv.find("session,"), std::string::npos);
  EXPECT_NE(csv.find("session-x,"), std::string::npos);
}

TEST(Export, EmptyInputGivesHeaderOnly) {
  const std::vector<AnalyzedSample> none;
  EXPECT_EQ(count_lines(samples_to_csv(none)), 1u);
}

}  // namespace
}  // namespace repro::core
