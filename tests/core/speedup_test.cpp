#include "core/speedup.hpp"

#include <gtest/gtest.h>

#include "base/expect.hpp"
#include "workload/kernels.hpp"

namespace repro::core {
namespace {

isa::KernelSpec compute_kernel() {
  isa::KernelSpec k;
  k.name = "compute";
  k.steps = 8;
  k.compute_cycles = 20;
  k.loads_per_step = 1;
  k.working_set_bytes = 32 * 1024;
  return k;
}

TEST(Speedup, SingleProcessorIsIdentity) {
  SpeedupOptions options;
  options.max_processors = 1;
  const SpeedupCurve curve = measure_speedup(compute_kernel(), 16, options);
  ASSERT_EQ(curve.points.size(), 1u);
  EXPECT_DOUBLE_EQ(curve.points[0].speedup, 1.0);
  EXPECT_DOUBLE_EQ(curve.points[0].efficiency, 1.0);
  EXPECT_EQ(curve.points[0].time, curve.t1);
}

TEST(Speedup, ComputeBoundKernelScalesWell) {
  const SpeedupCurve curve = measure_speedup(compute_kernel(), 64);
  ASSERT_EQ(curve.points.size(), 8u);
  EXPECT_GT(curve.points[7].speedup, 5.0);
  EXPECT_LE(curve.points[7].speedup, 8.5);
  // Efficiency in (0, 1] as the paper defines it.
  for (const SpeedupPoint& point : curve.points) {
    EXPECT_GT(point.efficiency, 0.0);
    EXPECT_LE(point.efficiency, 1.05);
  }
}

TEST(Speedup, SpeedupIsMonotoneForBalancedTrips) {
  // Trip = multiple of every width in 1..8 avoids leftover penalties.
  const SpeedupCurve curve =
      measure_speedup(compute_kernel(), 840);  // lcm(1..8) = 840
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    EXPECT_GE(curve.points[i].speedup,
              curve.points[i - 1].speedup * 0.99);
  }
}

TEST(Speedup, MemoryBoundKernelScalesWorse) {
  workload::KernelTuning tuning;
  isa::KernelSpec memory_bound = workload::jacobi_row_body(tuning);
  const SpeedupCurve mem_curve = measure_speedup(memory_bound, 64);
  const SpeedupCurve cpu_curve = measure_speedup(compute_kernel(), 64);
  EXPECT_LT(mem_curve.points[7].efficiency,
            cpu_curve.points[7].efficiency);
}

TEST(Speedup, RejectsBadInputs) {
  EXPECT_THROW((void)measure_speedup(compute_kernel(), 0),
               ContractViolation);
  SpeedupOptions options;
  options.max_processors = 9;
  EXPECT_THROW((void)measure_speedup(compute_kernel(), 8, options),
               ContractViolation);
}

TEST(Speedup, TableRendersAllPoints) {
  const SpeedupCurve curve = measure_speedup(compute_kernel(), 32);
  const std::string table = render_speedup_table(curve);
  EXPECT_NE(table.find("compute"), std::string::npos);
  EXPECT_NE(table.find("S_p"), std::string::npos);
  EXPECT_NE(table.find("E_p"), std::string::npos);
}

}  // namespace
}  // namespace repro::core
