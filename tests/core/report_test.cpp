#include "core/report.hpp"

#include <gtest/gtest.h>

#include "core/regression_models.hpp"

namespace repro::core {
namespace {

ConcurrencyMeasures table2_measures() {
  const std::vector<std::uint64_t> counts = {4142, 2351, 100, 15, 22,
                                             5,    25,   545, 2795};
  return ConcurrencyMeasures::from_counts(counts);
}

TEST(Report, Table2ShowsAllMeasureValues) {
  const std::string table = render_table2(table2_measures());
  EXPECT_NE(table.find("0.2795"), std::string::npos);  // c8
  EXPECT_NE(table.find("0.3507"), std::string::npos);  // Cw
  EXPECT_NE(table.find("7.61"), std::string::npos);    // Pc
}

TEST(Report, Table2HandlesUndefinedPc) {
  const std::vector<std::uint64_t> counts = {50, 50, 0, 0, 0, 0, 0, 0, 0};
  const std::string table =
      render_table2(ConcurrencyMeasures::from_counts(counts));
  EXPECT_NE(table.find("n/a"), std::string::npos);
}

TEST(Report, RegressionTableFiltersByRegressor) {
  MedianModel cw_model;
  cw_model.measure = SystemMeasure::kMissRate;
  cw_model.regressor = Regressor::kCw;
  cw_model.fit = stats::PolyFit{{1e-3, 2e-2, 3e-3}, 0.74};
  MedianModel pc_model = cw_model;
  pc_model.regressor = Regressor::kPc;
  pc_model.fit->r_squared = 0.07;
  const std::vector<MedianModel> models = {cw_model, pc_model};

  const std::string cw_table =
      render_regression_table(models, Regressor::kCw);
  EXPECT_NE(cw_table.find("0.74"), std::string::npos);
  EXPECT_EQ(cw_table.find("0.07"), std::string::npos);

  const std::string pc_table =
      render_regression_table(models, Regressor::kPc);
  EXPECT_NE(pc_table.find("0.07"), std::string::npos);
  EXPECT_NE(pc_table.find("vs. Pc"), std::string::npos);
}

TEST(Report, ActiveHistogramListsTopDown) {
  const std::vector<std::uint64_t> counts = {10, 20, 0, 0, 0, 0, 0, 0, 90};
  const std::string chart =
      render_active_histogram(counts, "test title");
  EXPECT_NE(chart.find("test title"), std::string::npos);
  // Row "8" appears before row "0".
  const auto eight = chart.find("\n8 ");
  const auto zero = chart.find("\n0 ");
  ASSERT_NE(eight, std::string::npos);
  ASSERT_NE(zero, std::string::npos);
  EXPECT_LT(eight, zero);
  EXPECT_NE(chart.find("TOTAL: 120"), std::string::npos);
}

TEST(Report, ProcessorHistogramLabelsCes) {
  const std::vector<std::uint64_t> counts = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::string chart = render_processor_histogram(counts, "procs");
  EXPECT_NE(chart.find("CE0"), std::string::npos);
  EXPECT_NE(chart.find("CE7"), std::string::npos);
}

}  // namespace
}  // namespace repro::core
