// Rig-batched lockstep kernel differential tests.
//
// The batching stack must be bit-identical to the serial path at every
// layer: the wide lane pass against its scalar twin (fuzzed), RigBatch
// against Machine::tick_block (including lanes peeling off at control
// events mid-batch), the batched session driver against serial
// controllers (records and full state digests), and whole studies across
// the nine presets for every batch width — all regardless of thread
// count or the AVX2/scalar dispatch.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "core/study.hpp"
#include "fx8/lane_kernel.hpp"
#include "fx8/machine.hpp"
#include "fx8/rig_batch.hpp"
#include "instr/session_batch.hpp"
#include "instr/session_controller.hpp"
#include "os/system.hpp"
#include "workload/generator.hpp"
#include "workload/presets.hpp"

namespace repro::core {
namespace {

// --- Study-level differential: batched == serial ----------------------

StudyConfig batch_config(std::uint32_t rig_batch, std::uint32_t threads = 1) {
  StudyConfig config;
  config.samples_per_session = 8;
  config.replicates_per_session = 8;
  config.sampling.interval_cycles = 6000;
  config.warmup_cycles = 2000;
  config.threads = threads;
  config.rig_batch = rig_batch;
  return config;
}

void expect_identical(const StudyResult& serial, const StudyResult& batched) {
  ASSERT_EQ(serial.sessions.size(), batched.sessions.size());
  EXPECT_EQ(serial.totals.num, batched.totals.num);
  EXPECT_EQ(serial.totals.proc, batched.totals.proc);
  EXPECT_EQ(serial.totals.ceop, batched.totals.ceop);
  EXPECT_EQ(serial.totals.membop, batched.totals.membop);
  EXPECT_EQ(serial.totals.records, batched.totals.records);
  EXPECT_EQ(serial.overall.cw, batched.overall.cw);
  EXPECT_EQ(serial.overall.pc, batched.overall.pc);
  // Fast-forward accounting is part of the contract: the batched driver
  // makes the same skip/naive/block decisions, just through cursors.
  EXPECT_EQ(serial.ff.skipped_cycles, batched.ff.skipped_cycles);
  EXPECT_EQ(serial.ff.naive_cycles, batched.ff.naive_cycles);
  EXPECT_EQ(serial.ff.block_cycles, batched.ff.block_cycles);
  EXPECT_EQ(serial.ff.jumps, batched.ff.jumps);
  for (std::size_t s = 0; s < serial.sessions.size(); ++s) {
    const SessionResult& a = serial.sessions[s];
    const SessionResult& b = batched.sessions[s];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.totals.num, b.totals.num);
    EXPECT_EQ(a.overall.cw, b.overall.cw);
    EXPECT_EQ(a.overall.pc, b.overall.pc);
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
      EXPECT_EQ(a.samples[i].measures.cw, b.samples[i].measures.cw);
      EXPECT_EQ(a.samples[i].miss_rate, b.samples[i].miss_rate);
      EXPECT_EQ(a.samples[i].bus_busy, b.samples[i].bus_busy);
    }
  }
}

// The full nine-preset study, eight replicates per session, batched
// eight wide: every sample, total, and fast-forward count must match the
// strictly serial (rig_batch = 1) run bit-for-bit.
TEST(RigBatchStudy, NinePresetsBatchedBitIdenticalToSerial) {
  const auto mixes = workload::session_presets();
  const StudyResult serial = run_study(mixes, batch_config(1));
  const StudyResult batched = run_study(mixes, batch_config(8));
  expect_identical(serial, batched);
}

// Batch-width sweep: every width (including widths that do not divide
// the replicate count, leaving a ragged tail group) reproduces serial.
TEST(RigBatchStudy, WidthSweepBitIdentical) {
  const auto mixes = workload::session_presets();
  std::vector<workload::WorkloadMix> three(mixes.begin(), mixes.begin() + 3);
  const StudyResult serial = run_study(three, batch_config(1));
  for (const std::uint32_t width : {2u, 3u, 4u, 8u, 16u}) {
    const StudyResult batched = run_study(three, batch_config(width));
    expect_identical(serial, batched);
  }
}

// Auto batching (rig_batch = 0) is just a default width, not a different
// code path: identical to requesting 8 explicitly.
TEST(RigBatchStudy, AutoWidthMatchesExplicitEight) {
  const auto mixes = workload::session_presets();
  std::vector<workload::WorkloadMix> two(mixes.begin(), mixes.begin() + 2);
  expect_identical(run_study(two, batch_config(8)),
                   run_study(two, batch_config(0)));
}

// Batching composes with the thread pool: groups are the task unit, and
// results stay bit-identical however many workers run them. (This is the
// configuration the TSan job drives.)
TEST(RigBatchStudy, ThreadedBatchedMatchesSerialBatched) {
  const auto mixes = workload::session_presets();
  std::vector<workload::WorkloadMix> three(mixes.begin(), mixes.begin() + 3);
  const StudyResult serial = run_study(three, batch_config(1, 1));
  const StudyResult pooled = run_study(three, batch_config(4, 4));
  expect_identical(serial, pooled);
}

// Narrow and partially-detached clusters take the slow lane path far
// more often (detached lanes never fast-path); the batch must still
// reproduce serial exactly.
TEST(RigBatchStudy, NarrowDetachedClusterBatchesBitIdentical) {
  const auto mixes = workload::session_presets();
  std::vector<workload::WorkloadMix> two(mixes.begin(), mixes.begin() + 2);
  StudyConfig serial_config = batch_config(1);
  serial_config.system.machine.cluster.n_ces = 4;
  serial_config.system.machine.cluster.detached_ces = 1;
  serial_config.replicates_per_session = 4;
  StudyConfig batched_config = serial_config;
  batched_config.rig_batch = 4;
  expect_identical(run_study(two, serial_config),
                   run_study(two, batched_config));
}

// Multi-cluster topologies (fx16/fx32/fx64): the batch window drives
// every cluster plus the second-level bank fabric; results must still be
// bit-identical to the serial per-rig path at every machine width.
TEST(RigBatchStudy, MultiClusterWidthsBatchedBitIdenticalToSerial) {
  const auto mixes = workload::session_presets();
  std::vector<workload::WorkloadMix> two(mixes.begin(), mixes.begin() + 2);
  for (const std::uint32_t width : {16u, 32u, 64u}) {
    StudyConfig serial_config = batch_config(1);
    serial_config.replicates_per_session = 4;
    serial_config.system.machine = width == 16   ? fx8::MachineConfig::fx16()
                                   : width == 32 ? fx8::MachineConfig::fx32()
                                                 : fx8::MachineConfig::fx64();
    StudyConfig batched_config = serial_config;
    batched_config.rig_batch = 4;
    expect_identical(run_study(two, serial_config),
                     run_study(two, batched_config));
  }
}

// The SIMD dispatch is invisible at every topology: a width-32 batched
// study pinned to the scalar lane pass reproduces the dispatched run.
TEST(RigBatchStudy, MultiClusterScalarMatchesDispatched) {
  const auto mixes = workload::session_presets();
  std::vector<workload::WorkloadMix> two(mixes.begin(), mixes.begin() + 2);
  StudyConfig config = batch_config(4);
  config.replicates_per_session = 4;
  config.system.machine = fx8::MachineConfig::fx32();
  const StudyResult dispatched = run_study(two, config);
  ASSERT_EQ(setenv("FX8_FORCE_SCALAR", "1", 1), 0);
  const StudyResult scalar = run_study(two, config);
  ASSERT_EQ(unsetenv("FX8_FORCE_SCALAR"), 0);
  expect_identical(dispatched, scalar);
}

// --- Machine-level differential: RigBatch == tick_block ---------------

isa::KernelSpec rb_kernel() {
  isa::KernelSpec k;
  k.steps = 6;
  k.compute_cycles = 4;
  k.compute_jitter = 2;
  k.loads_per_step = 2;
  k.stores_per_step = 1;
  k.working_set_bytes = 48 * 1024;
  return k;
}

isa::Program rb_program(std::uint64_t trip) {
  isa::ConcurrentLoopPhase loop;
  loop.trip_count = trip;
  loop.body = rb_kernel();
  return isa::ProgramBuilder("rig-batch")
      .data_base(0x200000)
      .serial(rb_kernel(), 2)
      .concurrent_loop(loop)
      .build();
}

void expect_same_machine(fx8::Machine& a, fx8::Machine& b) {
  EXPECT_EQ(a.now(), b.now());
  EXPECT_EQ(a.active_mask(), b.active_mask());
  EXPECT_EQ(a.cluster().control_events(), b.cluster().control_events());
  for (CeId ce = 0; ce < a.cluster().width(); ++ce) {
    EXPECT_EQ(a.ce_bus_op(ce), b.ce_bus_op(ce)) << "ce " << ce;
    const fx8::CeStats& sa = a.cluster().ce(ce).stats();
    const fx8::CeStats& sb = b.cluster().ce(ce).stats();
    EXPECT_EQ(sa.busy_cycles, sb.busy_cycles) << "ce " << ce;
    EXPECT_EQ(sa.compute_cycles, sb.compute_cycles) << "ce " << ce;
    EXPECT_EQ(sa.miss_wait_cycles, sb.miss_wait_cycles) << "ce " << ce;
    EXPECT_EQ(sa.fault_wait_cycles, sb.fault_wait_cycles) << "ce " << ce;
    EXPECT_EQ(sa.mem_accesses, sb.mem_accesses) << "ce " << ce;
    EXPECT_EQ(sa.instances_completed, sb.instances_completed);
  }
  EXPECT_EQ(a.cluster().stats().jobs_completed,
            b.cluster().stats().jobs_completed);
  EXPECT_EQ(a.cluster().stats().iterations_completed,
            b.cluster().stats().iterations_completed);
  EXPECT_EQ(a.shared_cache().stats().accesses,
            b.shared_cache().stats().accesses);
  EXPECT_EQ(a.shared_cache().stats().misses, b.shared_cache().stats().misses);
}

// Four rigs with different job lengths run in one batch: lanes hit their
// control events at different cycles, peel off mid-batch, and every
// final state must equal the rig's serial tick_block twin.
TEST(RigBatch, PeelOffAtControlEventsMatchesTickBlock) {
  constexpr std::size_t kRigs = 4;
  const std::array<std::uint64_t, kRigs> trips = {8, 21, 13, 34};
  std::vector<isa::Program> programs;
  for (const std::uint64_t trip : trips) {
    programs.push_back(rb_program(trip));
  }

  std::vector<fx8::NoFaultMmu> mmus(2 * kRigs);
  std::vector<std::unique_ptr<fx8::Machine>> batched;
  std::vector<std::unique_ptr<fx8::Machine>> serial;
  for (std::size_t r = 0; r < kRigs; ++r) {
    batched.push_back(
        std::make_unique<fx8::Machine>(fx8::MachineConfig::fx8(), mmus[r]));
    serial.push_back(std::make_unique<fx8::Machine>(fx8::MachineConfig::fx8(),
                                                    mmus[kRigs + r]));
    batched[r]->cluster().load(&programs[r], 1);
    serial[r]->cluster().load(&programs[r], 1);
  }

  // Batched: rounds of equal budgets; a lane that peels off early simply
  // re-enlists next round, exactly like the session driver re-enlists a
  // rig after its control decisions.
  constexpr Cycle kBudget = 97;  // Deliberately misaligned with events.
  fx8::RigBatch batch;
  for (;;) {
    batch.clear();
    for (std::size_t r = 0; r < kRigs; ++r) {
      if (batched[r]->cluster().busy()) {
        batch.add(*batched[r], kBudget, r);
      }
    }
    if (batch.empty()) {
      break;
    }
    batch.run();
    for (const fx8::RigBatch::Lane& lane : batch.lanes()) {
      ASSERT_GE(lane.advanced, 1u);
      ASSERT_LE(lane.advanced, kBudget);
    }
  }

  for (std::size_t r = 0; r < kRigs; ++r) {
    while (serial[r]->cluster().busy()) {
      (void)serial[r]->tick_block(kBudget);
    }
    expect_same_machine(*serial[r], *batched[r]);
  }
}

// Lanes with different budgets in the same run(): each advances exactly
// as its own tick_block call would, unaffected by its neighbours.
TEST(RigBatch, HeterogeneousBudgetsAdvanceIndependently) {
  constexpr std::size_t kRigs = 3;
  const std::array<Cycle, kRigs> budgets = {31, 131, 997};
  const isa::Program prog = rb_program(30);
  std::vector<fx8::NoFaultMmu> mmus(2 * kRigs);
  std::vector<std::unique_ptr<fx8::Machine>> batched;
  std::vector<std::unique_ptr<fx8::Machine>> serial;
  for (std::size_t r = 0; r < kRigs; ++r) {
    batched.push_back(
        std::make_unique<fx8::Machine>(fx8::MachineConfig::fx8(), mmus[r]));
    serial.push_back(std::make_unique<fx8::Machine>(fx8::MachineConfig::fx8(),
                                                    mmus[kRigs + r]));
    batched[r]->cluster().load(&prog, 1);
    serial[r]->cluster().load(&prog, 1);
  }

  fx8::RigBatch batch;
  for (std::size_t r = 0; r < kRigs; ++r) {
    batch.add(*batched[r], budgets[r], r);
  }
  batch.run();
  for (std::size_t r = 0; r < kRigs; ++r) {
    const Cycle serial_advanced = serial[r]->tick_block(budgets[r]);
    EXPECT_EQ(batch.lanes()[r].advanced, serial_advanced) << "rig " << r;
    expect_same_machine(*serial[r], *batched[r]);
  }
}

// --- Session-driver differential: digests included --------------------

// The batched session driver must leave every rig's full system state —
// not just its sample records — bit-identical to serial driving: the
// capsule digest over counters, VM, machine, and scheduler must match.
TEST(RigBatchSession, DriverMatchesSerialControllersAndDigests) {
  constexpr std::size_t kRigs = 4;
  const auto mixes = workload::session_presets();

  struct Rig {
    os::System system;
    workload::WorkloadGenerator generator;
    instr::SessionController controller;
    Rig(const workload::WorkloadMix& mix, std::uint64_t seed)
        : system(os::SystemConfig{}),
          generator(mix, seed),
          controller(system, generator, instr::SamplingConfig{},
                     seed ^ 0x5A5AULL) {}
  };

  std::vector<std::unique_ptr<Rig>> a;  // Serial.
  std::vector<std::unique_ptr<Rig>> b;  // Batched.
  for (std::size_t r = 0; r < kRigs; ++r) {
    // Different presets per lane: heterogeneous workloads in one batch.
    const workload::WorkloadMix& mix = mixes[2 * r];
    const std::uint64_t seed = 0xB16B00B5ULL + r;
    a.push_back(std::make_unique<Rig>(mix, seed));
    b.push_back(std::make_unique<Rig>(mix, seed));
  }

  constexpr Cycle kWarmup = 3000;
  constexpr std::uint32_t kSamples = 3;
  std::vector<std::vector<instr::SampleRecord>> serial_records;
  for (std::size_t r = 0; r < kRigs; ++r) {
    a[r]->controller.advance(kWarmup);
    serial_records.push_back(a[r]->controller.run_session(kSamples));
  }

  std::vector<instr::BatchRig> members;
  for (std::size_t r = 0; r < kRigs; ++r) {
    members.push_back(instr::BatchRig{&b[r]->controller, kWarmup, kSamples});
  }
  const auto batched_records = instr::run_session_batch(members);

  ASSERT_EQ(batched_records.size(), kRigs);
  for (std::size_t r = 0; r < kRigs; ++r) {
    ASSERT_EQ(serial_records[r].size(), batched_records[r].size());
    for (std::size_t s = 0; s < serial_records[r].size(); ++s) {
      EXPECT_EQ(serial_records[r][s].hw.num, batched_records[r][s].hw.num);
      EXPECT_EQ(serial_records[r][s].hw.ceop, batched_records[r][s].hw.ceop);
      EXPECT_EQ(serial_records[r][s].hw.membop,
                batched_records[r][s].hw.membop);
      EXPECT_EQ(serial_records[r][s].sw.jobs_completed,
                batched_records[r][s].sw.jobs_completed);
    }
    EXPECT_EQ(a[r]->system.now(), b[r]->system.now()) << "rig " << r;
    EXPECT_EQ(a[r]->system.state_digest(), b[r]->system.state_digest())
        << "rig " << r;
  }
}

// --- Lane-pass differential: scalar vs. AVX2, fuzzed -------------------

/// Deterministic xorshift64* stream for the fuzz states.
std::uint64_t next_rand(std::uint64_t& s) {
  s ^= s >> 12;
  s ^= s << 25;
  s ^= s >> 27;
  return s * 0x2545F4914F6CDD1DULL;
}

/// Fill one random machine-wide lane state, biased toward the countdown
/// decision edges.
fx8::CeHot random_hot(std::uint64_t& seed, std::uint32_t n_lanes) {
  fx8::CeHot base{};
  for (CeId c = 0; c < n_lanes; ++c) {
    base.phase[c] = static_cast<std::uint8_t>(next_rand(seed) % 8);
    base.bus_op[c] = static_cast<mem::CeBusOp>(next_rand(seed) % 4);
    const std::array<std::uint32_t, 6> edges = {
        0u, 1u, 2u, 3u, 0xFFFFu, 0xFFFFFFFFu};
    base.compute_left[c] = edges[next_rand(seed) % edges.size()];
    const std::array<Cycle, 6> fedges = {0u, 1u, 2u, 3u, 50u,
                                         0xFFFFFFFFFFULL};
    base.fault_left[c] = fedges[next_rand(seed) % fedges.size()];
    base.busy_cycles[c] = next_rand(seed) % 1000000;
    base.compute_cycles[c] = next_rand(seed) % 1000000;
    base.miss_wait_cycles[c] = next_rand(seed) % 1000000;
    base.fault_wait_cycles[c] = next_rand(seed) % 1000000;
  }
  return base;
}

void expect_same_hot(const fx8::CeHot& a, const fx8::CeHot& b, int iter) {
  ASSERT_EQ(a.phase, b.phase) << "iter " << iter;
  ASSERT_EQ(a.bus_op, b.bus_op) << "iter " << iter;
  ASSERT_EQ(a.compute_left, b.compute_left) << "iter " << iter;
  ASSERT_EQ(a.fault_left, b.fault_left) << "iter " << iter;
  ASSERT_EQ(a.busy_cycles, b.busy_cycles) << "iter " << iter;
  ASSERT_EQ(a.compute_cycles, b.compute_cycles) << "iter " << iter;
  ASSERT_EQ(a.miss_wait_cycles, b.miss_wait_cycles) << "iter " << iter;
  ASSERT_EQ(a.fault_wait_cycles, b.fault_wait_cycles) << "iter " << iter;
}

#if defined(FX8_HAVE_AVX2)

// Every lane classification — fast compute/miss/fault, parked, slow —
// and every countdown edge (0, 1, 2, huge) must produce byte-identical
// CeHot lanes and the same slow mask from both passes, across the full
// 64-lane machine-wide block.
TEST(RigBatch, ScalarAndAvx2LanePassesAgree) {
  if (!__builtin_cpu_supports("avx2")) {
    GTEST_SKIP() << "host has no AVX2";
  }
  std::uint64_t seed = 0xC0FFEE5EEDULL;
  for (int iter = 0; iter < 5000; ++iter) {
    const fx8::CeHot base = random_hot(seed, kMaxTopologyCes);
    const LaneMask fill_ready = next_rand(seed);

    fx8::CeHot scalar = base;
    fx8::CeHot vector = base;
    const LaneMask slow_scalar =
        fx8::lane_pass_scalar(scalar, fill_ready, kMaxTopologyCes);
    const LaneMask slow_vector =
        fx8::lane_pass_avx2(vector, fill_ready, kMaxTopologyCes);
    ASSERT_EQ(slow_scalar, slow_vector) << "iter " << iter;
    expect_same_hot(scalar, vector, iter);
  }
}

#endif  // FX8_HAVE_AVX2

// --- Wide-pass composition fuzz ----------------------------------------

/// Run `pass` as eight independent 8-lane window invocations (the
/// pre-width-native per-cluster shape) and compose the machine-wide slow
/// mask. The lanes outside each window are shielded from the pass by
/// parking them (phase kIdle) for its invocation.
LaneMask per_cluster_windows(fx8::LanePassFn pass, fx8::CeHot& hot,
                             LaneMask fill_ready) {
  LaneMask slow = 0;
  for (std::uint32_t base = 0; base < kMaxTopologyCes; base += kMaxCes) {
    fx8::CeHot window = hot;
    // Shift the window's lanes down to 0..7 so an 8-lane invocation
    // covers exactly this cluster's slice.
    for (CeId c = 0; c < kMaxCes; ++c) {
      window.phase[c] = hot.phase[base + c];
      window.bus_op[c] = hot.bus_op[base + c];
      window.compute_left[c] = hot.compute_left[base + c];
      window.fault_left[c] = hot.fault_left[base + c];
      window.busy_cycles[c] = hot.busy_cycles[base + c];
      window.compute_cycles[c] = hot.compute_cycles[base + c];
      window.miss_wait_cycles[c] = hot.miss_wait_cycles[base + c];
      window.fault_wait_cycles[c] = hot.fault_wait_cycles[base + c];
    }
    slow |= pass(window, (fill_ready >> base) & 0xFFu, kMaxCes) << base;
    for (CeId c = 0; c < kMaxCes; ++c) {
      hot.phase[base + c] = window.phase[c];
      hot.bus_op[base + c] = window.bus_op[c];
      hot.compute_left[base + c] = window.compute_left[c];
      hot.fault_left[base + c] = window.fault_left[c];
      hot.busy_cycles[base + c] = window.busy_cycles[c];
      hot.compute_cycles[base + c] = window.compute_cycles[c];
      hot.miss_wait_cycles[base + c] = window.miss_wait_cycles[c];
      hot.fault_wait_cycles[base + c] = window.fault_wait_cycles[c];
    }
  }
  return slow;
}

// The machine-wide 64-lane pass must equal the composition of eight
// per-cluster 8-lane windows — the exact reduction the width-native
// tick_block performs — on random hot states, for the scalar pass and
// (when the host has it) the AVX2 pass.
TEST(WideKernelFuzz, WidePassMatchesPerClusterWindows) {
  std::vector<fx8::LanePassFn> passes = {&fx8::lane_pass_scalar};
#if defined(FX8_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2")) {
    passes.push_back(&fx8::lane_pass_avx2);
  }
#endif
  for (fx8::LanePassFn pass : passes) {
    std::uint64_t seed = 0xD15EA5EDBEEFULL;
    for (int iter = 0; iter < 5000; ++iter) {
      const fx8::CeHot base = random_hot(seed, kMaxTopologyCes);
      const LaneMask fill_ready = next_rand(seed);

      fx8::CeHot wide = base;
      fx8::CeHot windows = base;
      const LaneMask slow_wide = pass(wide, fill_ready, kMaxTopologyCes);
      const LaneMask slow_windows =
          per_cluster_windows(pass, windows, fill_ready);
      ASSERT_EQ(slow_wide, slow_windows)
          << fx8::lane_pass_name(pass) << " iter " << iter;
      expect_same_hot(wide, windows, iter);
    }
  }
}

// The dispatcher honours FX8_FORCE_SCALAR regardless of host support.
TEST(RigBatch, ForceScalarEnvPinsScalarPass) {
  ASSERT_EQ(setenv("FX8_FORCE_SCALAR", "1", 1), 0);
  EXPECT_EQ(fx8::select_lane_pass(), &fx8::lane_pass_scalar);
  EXPECT_STREQ(fx8::lane_pass_name(fx8::select_lane_pass()), "scalar");
  ASSERT_EQ(setenv("FX8_FORCE_SCALAR", "0", 1), 0);
#if defined(FX8_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2")) {
    EXPECT_EQ(fx8::select_lane_pass(), &fx8::lane_pass_avx2);
    EXPECT_STREQ(fx8::lane_pass_name(fx8::select_lane_pass()), "avx2");
  }
#endif
  ASSERT_EQ(unsetenv("FX8_FORCE_SCALAR"), 0);
}

// A batch pinned to the scalar pass reproduces the default dispatch
// exactly — the machine-visible contract does not depend on the SIMD
// path taken.
TEST(RigBatch, ScalarBatchMatchesDispatchedBatch) {
  const isa::Program prog = rb_program(24);
  fx8::NoFaultMmu mmu_a;
  fx8::NoFaultMmu mmu_b;
  fx8::Machine dispatched(fx8::MachineConfig::fx8(), mmu_a);
  fx8::Machine scalar(fx8::MachineConfig::fx8(), mmu_b);
  dispatched.cluster().load(&prog, 1);
  scalar.cluster().load(&prog, 1);

  fx8::RigBatch default_batch;
  fx8::RigBatch scalar_batch{&fx8::lane_pass_scalar};
  while (dispatched.cluster().busy() || scalar.cluster().busy()) {
    default_batch.clear();
    scalar_batch.clear();
    if (dispatched.cluster().busy()) {
      default_batch.add(dispatched, 61);
      default_batch.run();
    }
    if (scalar.cluster().busy()) {
      scalar_batch.add(scalar, 61);
      scalar_batch.run();
    }
  }
  expect_same_machine(dispatched, scalar);
}

}  // namespace
}  // namespace repro::core
