// Event-horizon fast-forward differential sweep: the fast path must be
// bit-identical to the naive cycle-by-cycle tick loop — not just in the
// sample records the study reports, but in every counter any component
// keeps. Each parameterised case runs one session twice (forced naive
// vs. fast-forward) across workload presets, cluster widths FX/1..FX/8,
// and detached-CE splits, then compares the full artifact set: sample
// records (hardware reductions + kernel deltas), kernel counter
// snapshots, per-CE stats, cluster/cache/bus/crossbar/VM/scheduler
// stats, and the machine clock.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "core/study.hpp"
#include "instr/session_controller.hpp"
#include "os/system.hpp"
#include "workload/generator.hpp"
#include "workload/presets.hpp"

namespace repro::core {
namespace {

struct FfParam {
  std::string mix;
  std::uint32_t width = kMaxCes;
  std::uint32_t detached = 0;
};

std::string param_name(const ::testing::TestParamInfo<FfParam>& info) {
  std::string name = info.param.mix + "_w" +
                     std::to_string(info.param.width) + "_d" +
                     std::to_string(info.param.detached);
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name;
}

workload::WorkloadMix find_mix(const std::string& name) {
  for (const workload::WorkloadMix& mix : workload::session_presets()) {
    if (mix.name == name) {
      return mix;
    }
  }
  ADD_FAILURE() << "unknown preset " << name;
  return {};
}

/// Everything a run leaves behind: the study-visible records plus every
/// component counter, latched after the session completes.
struct RunArtifacts {
  std::vector<instr::SampleRecord> records;
  std::array<std::uint64_t, os::kNumKernelCounters> counters{};
  std::vector<fx8::CeStats> ce_stats;
  fx8::ClusterStats cluster;
  cache::SharedCacheStats cache;
  std::vector<std::vector<std::uint64_t>> bus_op_cycles;
  std::uint64_t xbar_conflicts = 0;
  os::VmStats vm;
  os::SchedulerStats sched;
  Cycle now = 0;
};

RunArtifacts run_one(const FfParam& param, bool fast_forward) {
  os::SystemConfig sys_config;
  sys_config.machine.cluster.n_ces = param.width;
  sys_config.machine.cluster.detached_ces = param.detached;
  os::System system(sys_config);

  workload::WorkloadGenerator generator(find_mix(param.mix), 0xFEED5EED);
  instr::SamplingConfig sampling;
  sampling.interval_cycles = 12000;
  sampling.buffer_depth = 256;
  sampling.fast_forward = fast_forward;
  instr::SessionController controller(system, generator, sampling,
                                      0xACE0FACE);
  controller.advance(3000);

  RunArtifacts artifacts;
  artifacts.records = controller.run_session(2);
  artifacts.counters = system.counters().snapshot();
  fx8::Machine& machine = system.machine();
  for (CeId ce = 0; ce < param.width; ++ce) {
    artifacts.ce_stats.push_back(machine.cluster().ce(ce).stats());
  }
  artifacts.cluster = machine.cluster().stats();
  artifacts.cache = machine.shared_cache().stats();
  const std::uint32_t buses = machine.membus().config().bus_count;
  for (std::uint32_t bus = 0; bus < buses; ++bus) {
    std::vector<std::uint64_t> ops;
    for (std::size_t op = 0; op < mem::kNumMemBusOps; ++op) {
      ops.push_back(
          machine.membus().op_cycles(bus, static_cast<mem::MemBusOp>(op)));
    }
    artifacts.bus_op_cycles.push_back(std::move(ops));
  }
  artifacts.xbar_conflicts = system.machine().cluster().crossbar().conflicts();
  artifacts.vm = system.vm().stats();
  artifacts.sched = system.scheduler().stats();
  artifacts.now = system.now();
  return artifacts;
}

void expect_same_ce(const fx8::CeStats& a, const fx8::CeStats& b, CeId ce) {
  EXPECT_EQ(a.busy_cycles, b.busy_cycles) << "ce " << ce;
  EXPECT_EQ(a.compute_cycles, b.compute_cycles) << "ce " << ce;
  EXPECT_EQ(a.mem_accesses, b.mem_accesses) << "ce " << ce;
  EXPECT_EQ(a.miss_wait_cycles, b.miss_wait_cycles) << "ce " << ce;
  EXPECT_EQ(a.fault_wait_cycles, b.fault_wait_cycles) << "ce " << ce;
  EXPECT_EQ(a.xbar_conflict_cycles, b.xbar_conflict_cycles) << "ce " << ce;
  EXPECT_EQ(a.instances_completed, b.instances_completed) << "ce " << ce;
}

void expect_same(const RunArtifacts& naive, const RunArtifacts& fast) {
  ASSERT_EQ(naive.records.size(), fast.records.size());
  for (std::size_t r = 0; r < naive.records.size(); ++r) {
    const instr::SampleRecord& a = naive.records[r];
    const instr::SampleRecord& b = fast.records[r];
    EXPECT_EQ(a.index, b.index);
    EXPECT_EQ(a.interval_cycles, b.interval_cycles);
    EXPECT_EQ(a.hw.num, b.hw.num) << "sample " << r;
    EXPECT_EQ(a.hw.proc, b.hw.proc) << "sample " << r;
    EXPECT_EQ(a.hw.ceop, b.hw.ceop) << "sample " << r;
    EXPECT_EQ(a.hw.membop, b.hw.membop) << "sample " << r;
    EXPECT_EQ(a.hw.records, b.hw.records) << "sample " << r;
    EXPECT_EQ(a.hw.ce_bus_cycles, b.hw.ce_bus_cycles) << "sample " << r;
    EXPECT_EQ(a.sw.ce_page_faults_user, b.sw.ce_page_faults_user);
    EXPECT_EQ(a.sw.ce_page_faults_system, b.sw.ce_page_faults_system);
    EXPECT_EQ(a.sw.jobs_completed, b.sw.jobs_completed);
    EXPECT_EQ(a.sw.context_switches, b.sw.context_switches);
  }
  EXPECT_EQ(naive.counters, fast.counters);
  ASSERT_EQ(naive.ce_stats.size(), fast.ce_stats.size());
  for (std::size_t ce = 0; ce < naive.ce_stats.size(); ++ce) {
    expect_same_ce(naive.ce_stats[ce], fast.ce_stats[ce],
                   static_cast<CeId>(ce));
  }
  EXPECT_EQ(naive.cluster.jobs_completed, fast.cluster.jobs_completed);
  EXPECT_EQ(naive.cluster.loops_completed, fast.cluster.loops_completed);
  EXPECT_EQ(naive.cluster.iterations_completed,
            fast.cluster.iterations_completed);
  EXPECT_EQ(naive.cluster.serial_reps_completed,
            fast.cluster.serial_reps_completed);
  EXPECT_EQ(naive.cluster.dependence_wait_cycles,
            fast.cluster.dependence_wait_cycles);
  EXPECT_EQ(naive.cache.accesses, fast.cache.accesses);
  EXPECT_EQ(naive.cache.misses, fast.cache.misses);
  EXPECT_EQ(naive.cache.write_upgrades, fast.cache.write_upgrades);
  EXPECT_EQ(naive.cache.write_backs, fast.cache.write_backs);
  EXPECT_EQ(naive.cache.merged_misses, fast.cache.merged_misses);
  EXPECT_EQ(naive.cache.snoop_invalidations, fast.cache.snoop_invalidations);
  EXPECT_EQ(naive.bus_op_cycles, fast.bus_op_cycles);
  EXPECT_EQ(naive.xbar_conflicts, fast.xbar_conflicts);
  EXPECT_EQ(naive.vm.faults, fast.vm.faults);
  EXPECT_EQ(naive.vm.evictions, fast.vm.evictions);
  EXPECT_EQ(naive.vm.global_reclaims, fast.vm.global_reclaims);
  EXPECT_EQ(naive.vm.translations, fast.vm.translations);
  EXPECT_EQ(naive.sched.jobs_completed, fast.sched.jobs_completed);
  EXPECT_EQ(naive.sched.cluster_jobs_completed,
            fast.sched.cluster_jobs_completed);
  EXPECT_EQ(naive.sched.serial_jobs_completed,
            fast.sched.serial_jobs_completed);
  EXPECT_EQ(naive.sched.total_wait_cycles, fast.sched.total_wait_cycles);
  EXPECT_EQ(naive.now, fast.now);
}

class FastForwardDifferential : public ::testing::TestWithParam<FfParam> {};

TEST_P(FastForwardDifferential, BitIdenticalToNaiveTickLoop) {
  const RunArtifacts naive = run_one(GetParam(), /*fast_forward=*/false);
  const RunArtifacts fast = run_one(GetParam(), /*fast_forward=*/true);
  expect_same(naive, fast);
}

std::vector<FfParam> sweep_params() {
  std::vector<FfParam> params;
  // Every session preset from the paper's measurement campaign, so the
  // fused kernel and the bulk jumps are pinned against each workload
  // shape (interactive, numeric, batch, serial, idle) at every cluster
  // width and detached split.
  const std::array<std::string, 9> mixes = {
      "session-1-light-interactive", "session-2-mixed",
      "session-3-numeric-heavy",     "session-4-idle-morning",
      "session-5-steady-dev",        "session-6-batch-numeric",
      "session-7-compile-test",      "session-8-mixed-busy",
      "session-9-serial-day"};
  for (const std::string& mix : mixes) {
    for (const std::uint32_t width : {1u, 2u, 4u, 8u}) {
      for (const std::uint32_t detached : {0u, 2u}) {
        if (detached < width) {
          params.push_back({mix, width, detached});
        }
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FastForwardDifferential,
                         ::testing::ValuesIn(sweep_params()), param_name);

// The study engine's switch: forcing the naive path through StudyConfig
// must reproduce the fast-forward study bit-for-bit, replicates and
// threads included.
TEST(FastForward, StudyLevelBitIdentity) {
  const auto mixes = workload::session_presets();
  const std::vector<workload::WorkloadMix> three(mixes.begin(),
                                                 mixes.begin() + 3);
  StudyConfig config;
  config.samples_per_session = 2;
  config.sampling.interval_cycles = 15000;
  config.warmup_cycles = 3000;
  config.threads = 1;
  config.replicates_per_session = 2;

  config.fast_forward = false;
  const StudyResult naive = run_study(three, config);
  config.fast_forward = true;
  const StudyResult fast = run_study(three, config);
  config.threads = 4;
  const StudyResult pooled = run_study(three, config);

  for (const StudyResult* other : {&fast, &pooled}) {
    EXPECT_EQ(naive.totals.num, other->totals.num);
    EXPECT_EQ(naive.totals.proc, other->totals.proc);
    EXPECT_EQ(naive.totals.ceop, other->totals.ceop);
    EXPECT_EQ(naive.totals.membop, other->totals.membop);
    EXPECT_EQ(naive.totals.records, other->totals.records);
    EXPECT_EQ(naive.overall.cw, other->overall.cw);
    EXPECT_EQ(naive.overall.pc, other->overall.pc);
    ASSERT_EQ(naive.sessions.size(), other->sessions.size());
    for (std::size_t s = 0; s < naive.sessions.size(); ++s) {
      EXPECT_EQ(naive.sessions[s].totals.num, other->sessions[s].totals.num);
      ASSERT_EQ(naive.sessions[s].samples.size(),
                other->sessions[s].samples.size());
      for (std::size_t i = 0; i < naive.sessions[s].samples.size(); ++i) {
        EXPECT_EQ(naive.sessions[s].samples[i].measures.cw,
                  other->sessions[s].samples[i].measures.cw);
        EXPECT_EQ(naive.sessions[s].samples[i].miss_rate,
                  other->sessions[s].samples[i].miss_rate);
      }
    }
  }
}

// replicates_per_session=1 must reproduce the original single-system
// session stream: replicate 0 consumes the session seed unchanged.
TEST(FastForward, SingleReplicateMatchesClassicSessions) {
  const auto mixes = workload::session_presets();
  const std::vector<workload::WorkloadMix> two(mixes.begin(),
                                               mixes.begin() + 2);
  StudyConfig config;
  config.samples_per_session = 2;
  config.sampling.interval_cycles = 15000;
  config.warmup_cycles = 3000;
  config.threads = 1;

  config.replicates_per_session = 1;
  const StudyResult classic = run_study(two, config);
  config.threads = 4;  // same decomposition, pooled
  const StudyResult pooled = run_study(two, config);
  EXPECT_EQ(classic.totals.num, pooled.totals.num);
  EXPECT_EQ(classic.totals.records, pooled.totals.records);
}

// Triggered captures always run naively, but a fast-forwarded warmup
// must leave the system in exactly the state the naive warmup does, so
// the capture that follows latches identical probe records.
TEST(FastForward, TriggeredCaptureAfterFastForwardedWarmup) {
  auto capture = [](bool fast_forward) {
    os::SystemConfig sys_config;
    os::System system(sys_config);
    workload::WorkloadGenerator generator(workload::high_concurrency_mix(),
                                          0xD15EA5E);
    instr::SamplingConfig sampling;
    sampling.interval_cycles = 12000;
    sampling.buffer_depth = 256;
    sampling.fast_forward = fast_forward;
    instr::SessionController controller(system, generator, sampling,
                                        0xBEEFCAFE);
    controller.advance(5000);
    return controller.capture_triggered(instr::TriggerMode::kAllActive,
                                        400000);
  };
  const auto naive = capture(false);
  const auto fast = capture(true);
  ASSERT_EQ(naive.has_value(), fast.has_value());
  if (!naive.has_value()) {
    GTEST_SKIP() << "trigger did not fire within the timeout";
  }
  ASSERT_EQ(naive->size(), fast->size());
  for (std::size_t i = 0; i < naive->size(); ++i) {
    EXPECT_EQ((*naive)[i].cycle, (*fast)[i].cycle);
    EXPECT_EQ((*naive)[i].ce_ops, (*fast)[i].ce_ops);
    EXPECT_EQ((*naive)[i].mem_ops, (*fast)[i].mem_ops);
    EXPECT_EQ((*naive)[i].active_mask, (*fast)[i].active_mask);
  }
}

}  // namespace
}  // namespace repro::core
