// Contention-scenario differential tests: the lock and RCU workloads
// must be bit-identical across every execution strategy the study
// engine offers — serial vs. rig-batched, single- vs. multi-threaded,
// dispatched vs. scalar-forced SIMD, detached clusters — and their
// in-flight state must survive a capsule round trip exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/study.hpp"
#include "instr/session_controller.hpp"
#include "os/system.hpp"
#include "workload/generator.hpp"
#include "workload/presets.hpp"

namespace repro::core {
namespace {

std::vector<workload::WorkloadMix> contention_mixes() {
  return {workload::lock_contention_mix(workload::LockType::kTicket),
          workload::lock_contention_mix(workload::LockType::kMcs),
          workload::rcu_search_mix()};
}

StudyConfig contention_config(std::uint32_t rig_batch,
                              std::uint32_t threads = 1) {
  StudyConfig config;
  config.samples_per_session = 6;
  config.replicates_per_session = 8;
  config.sampling.interval_cycles = 6000;
  config.warmup_cycles = 2000;
  config.threads = threads;
  config.rig_batch = rig_batch;
  return config;
}

void expect_identical(const StudyResult& a, const StudyResult& b) {
  ASSERT_EQ(a.sessions.size(), b.sessions.size());
  EXPECT_EQ(a.totals.num, b.totals.num);
  EXPECT_EQ(a.totals.ceop, b.totals.ceop);
  EXPECT_EQ(a.totals.membop, b.totals.membop);
  EXPECT_EQ(a.totals.records, b.totals.records);
  EXPECT_EQ(a.overall.cw, b.overall.cw);
  EXPECT_EQ(a.overall.pc, b.overall.pc);
  EXPECT_EQ(a.ff.skipped_cycles, b.ff.skipped_cycles);
  EXPECT_EQ(a.ff.jumps, b.ff.jumps);
  for (std::size_t s = 0; s < a.sessions.size(); ++s) {
    EXPECT_EQ(a.sessions[s].name, b.sessions[s].name);
    EXPECT_EQ(a.sessions[s].totals.num, b.sessions[s].totals.num);
    EXPECT_EQ(a.sessions[s].overall.cw, b.sessions[s].overall.cw);
    ASSERT_EQ(a.sessions[s].samples.size(), b.sessions[s].samples.size());
    for (std::size_t i = 0; i < a.sessions[s].samples.size(); ++i) {
      EXPECT_EQ(a.sessions[s].samples[i].measures.cw,
                b.sessions[s].samples[i].measures.cw);
      EXPECT_EQ(a.sessions[s].samples[i].bus_busy,
                b.sessions[s].samples[i].bus_busy);
    }
  }
}

// The FIFO critical-section chains exercise the CCB dependence release
// far harder than the numeric presets; the batched driver must still
// reproduce the serial path bit-for-bit.
TEST(ContentionStudy, BatchedBitIdenticalToSerial) {
  const auto mixes = contention_mixes();
  expect_identical(run_study(mixes, contention_config(1)),
                   run_study(mixes, contention_config(8)));
}

TEST(ContentionStudy, ThreadedBatchedMatchesSerial) {
  const auto mixes = contention_mixes();
  expect_identical(run_study(mixes, contention_config(1, 1)),
                   run_study(mixes, contention_config(4, 4)));
}

TEST(ContentionStudy, ScalarForcedMatchesDispatched) {
  const auto mixes = contention_mixes();
  const StudyConfig config = contention_config(4);
  const StudyResult dispatched = run_study(mixes, config);
  ASSERT_EQ(setenv("FX8_FORCE_SCALAR", "1", 1), 0);
  const StudyResult scalar = run_study(mixes, config);
  ASSERT_EQ(unsetenv("FX8_FORCE_SCALAR"), 0);
  expect_identical(dispatched, scalar);
}

// Detached CEs never take the fast lane path; the lock chains must
// still batch bit-identically on a narrow, partially-detached cluster.
TEST(ContentionStudy, DetachedClusterBatchesBitIdentical) {
  const auto mixes = contention_mixes();
  StudyConfig serial_config = contention_config(1);
  serial_config.system.machine.cluster.n_ces = 4;
  serial_config.system.machine.cluster.detached_ces = 1;
  serial_config.replicates_per_session = 4;
  StudyConfig batched_config = serial_config;
  batched_config.rig_batch = 4;
  expect_identical(run_study(mixes, serial_config),
                   run_study(mixes, batched_config));
}

// --- Capsule round trip of in-flight lock state ------------------------

struct Rig {
  os::System system;
  workload::WorkloadGenerator generator;
  instr::SessionController controller;
  Rig(const workload::WorkloadMix& mix, std::uint64_t seed)
      : system(os::SystemConfig{}),
        generator(mix, seed),
        controller(system, generator, instr::SamplingConfig{},
                   seed ^ 0x5A5AULL) {}
};

// A session stopped mid-stream — with partially-executed dependence
// chains (queued "lock waiters") live inside the CCB — must restore to
// the same digest and re-seal to the very bytes it was loaded from.
TEST(ContentionCapsule, MidStreamLockStateRoundTrips) {
  for (const workload::WorkloadMix& mix : contention_mixes()) {
    Rig rig(mix, 0xC0DE);
    rig.controller.advance(9000);  // Mid-round, nothing aligned.

    const std::uint64_t before =
        session_digest(rig.system, rig.generator, rig.controller);
    const auto sealed =
        save_session(rig.system, rig.generator, rig.controller);

    Rig fresh(mix, 0xD00D);  // Genuinely different state before loading.
    EXPECT_NE(session_digest(fresh.system, fresh.generator,
                             fresh.controller),
              before)
        << mix.name;
    load_session(sealed, fresh.system, fresh.generator, fresh.controller);
    EXPECT_EQ(session_digest(fresh.system, fresh.generator,
                             fresh.controller),
              before)
        << mix.name;
    EXPECT_EQ(save_session(fresh.system, fresh.generator, fresh.controller),
              sealed)
        << mix.name;

    // And the restored rig keeps ticking in lockstep with the original.
    rig.controller.advance(5000);
    fresh.controller.advance(5000);
    EXPECT_EQ(session_digest(fresh.system, fresh.generator,
                             fresh.controller),
              session_digest(rig.system, rig.generator, rig.controller))
        << mix.name;
  }
}

}  // namespace
}  // namespace repro::core
