#include "core/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>

namespace repro::core {
namespace {

TEST(Json, ScalarsDump) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-3).dump(), "-3");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, IntegralDoublesPrintExact) {
  EXPECT_EQ(Json(12.0).dump(), "12");
  EXPECT_EQ(Json(1e6).dump(), "1000000");
  EXPECT_EQ(Json(std::uint64_t{400000}).dump(), "400000");
}

TEST(Json, DoublesRoundTripAtShortestPrecision) {
  // Non-integral doubles print as the shortest decimal that parses back
  // to the same bits — "0.1", not "0.100000000000000006".
  EXPECT_EQ(Json(0.1).dump(), "0.1");
  EXPECT_EQ(Json(0.35).dump(), "0.35");
  // Values that genuinely need 16 or 17 significant digits keep them.
  const double third = 1.0 / 3.0;
  const double tricky = 0.1 + 0.2;  // 0.30000000000000004
  for (const double value : {third, tricky, 2.2250738585072014e-308,
                             1.7976931348623157e308, -0.49999999999999994}) {
    const std::string text = Json(value).dump();
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), value) << text;
  }
  EXPECT_NE(Json(tricky).dump(), "0.3");
}

TEST(Json, NonFiniteSerializesAsNull) {
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, EscapesStrings) {
  EXPECT_EQ(Json("a\"b\\c\n").dump(), "\"a\\\"b\\\\c\\n\"");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, ObjectKeepsInsertionOrderAndOverwritesInPlace) {
  Json object = Json::object();
  object.set("b", 1);
  object.set("a", 2);
  object.set("b", 3);
  EXPECT_EQ(object.dump(), "{\"b\":3,\"a\":2}");
  ASSERT_NE(object.find("b"), nullptr);
  EXPECT_EQ(object.find("b")->as_number(), 3.0);
  EXPECT_EQ(object.find("missing"), nullptr);
}

TEST(Json, ArraysNest) {
  Json array = Json::array();
  array.push_back(1);
  Json inner = Json::object();
  inner.set("k", "v");
  array.push_back(inner);
  EXPECT_EQ(array.dump(), "[1,{\"k\":\"v\"}]");
}

TEST(Json, PrettyPrintIndents) {
  Json object = Json::object();
  object.set("k", 1);
  EXPECT_EQ(object.dump(2), "{\n  \"k\": 1\n}");
  EXPECT_EQ(Json::object().dump(2), "{}");
}

}  // namespace
}  // namespace repro::core
