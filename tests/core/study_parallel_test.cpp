// Determinism contract of the parallel study engine: a study run with N
// worker threads is bit-identical to the serial run — same totals, same
// per-session measures, same regression coefficients (see
// docs/parallel_execution.md).
#include "core/study.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/regression_models.hpp"

namespace repro::core {
namespace {

StudyConfig quick_config(std::uint32_t threads) {
  StudyConfig config;
  config.samples_per_session = 2;
  config.sampling.interval_cycles = 15000;
  config.warmup_cycles = 3000;
  config.threads = threads;
  return config;
}

void expect_identical(const StudyResult& serial, const StudyResult& pooled,
                      bool compare_models = true) {
  ASSERT_EQ(serial.sessions.size(), pooled.sessions.size());
  EXPECT_EQ(serial.totals.num, pooled.totals.num);
  EXPECT_EQ(serial.totals.proc, pooled.totals.proc);
  EXPECT_EQ(serial.totals.ceop, pooled.totals.ceop);
  EXPECT_EQ(serial.totals.membop, pooled.totals.membop);
  EXPECT_EQ(serial.totals.records, pooled.totals.records);
  EXPECT_EQ(serial.overall.cw, pooled.overall.cw);
  EXPECT_EQ(serial.overall.pc, pooled.overall.pc);
  for (std::size_t s = 0; s < serial.sessions.size(); ++s) {
    const SessionResult& a = serial.sessions[s];
    const SessionResult& b = pooled.sessions[s];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.totals.num, b.totals.num);
    EXPECT_EQ(a.overall.cw, b.overall.cw);
    EXPECT_EQ(a.overall.pc, b.overall.pc);
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
      EXPECT_EQ(a.samples[i].measures.cw, b.samples[i].measures.cw);
      EXPECT_EQ(a.samples[i].miss_rate, b.samples[i].miss_rate);
      EXPECT_EQ(a.samples[i].bus_busy, b.samples[i].bus_busy);
    }
  }
  // The Table 3/4 regressions derive from the samples; coefficients must
  // match to the last bit. (Needs enough samples to occupy three median
  // bins, so the truncated-mix tests skip it.)
  if (!compare_models) {
    return;
  }
  const auto models_a = fit_all_models(serial.all_samples());
  const auto models_b = fit_all_models(pooled.all_samples());
  ASSERT_EQ(models_a.size(), models_b.size());
  for (std::size_t m = 0; m < models_a.size(); ++m) {
    ASSERT_EQ(models_a[m].fit.has_value(), models_b[m].fit.has_value());
    if (models_a[m].fit) {
      EXPECT_EQ(models_a[m].fit->coeffs, models_b[m].fit->coeffs);
      EXPECT_EQ(models_a[m].fit->r_squared, models_b[m].fit->r_squared);
    }
  }
}

TEST(StudyParallel, EightThreadsBitIdenticalToSerial) {
  const auto mixes = workload::session_presets();
  const StudyResult serial = run_study(mixes, quick_config(1));
  const StudyResult pooled = run_study(mixes, quick_config(8));
  expect_identical(serial, pooled);
}

TEST(StudyParallel, TwoThreadsBitIdenticalToSerial) {
  const auto mixes = workload::session_presets();
  std::vector<workload::WorkloadMix> three(mixes.begin(), mixes.begin() + 3);
  const StudyResult serial = run_study(three, quick_config(1));
  const StudyResult pooled = run_study(three, quick_config(2));
  expect_identical(serial, pooled, /*compare_models=*/false);
}

TEST(StudyParallel, MoreThreadsThanSessionsIsFine) {
  const auto mixes = workload::session_presets();
  std::vector<workload::WorkloadMix> two(mixes.begin(), mixes.begin() + 2);
  const StudyResult serial = run_study(two, quick_config(1));
  const StudyResult pooled = run_study(two, quick_config(16));
  expect_identical(serial, pooled, /*compare_models=*/false);
}

TEST(StudyParallel, ResolveThreadsPrefersConfigThenEnv) {
  EXPECT_EQ(resolve_threads(quick_config(4)), 4u);
  ASSERT_EQ(setenv("FX8_THREADS", "6", 1), 0);
  EXPECT_EQ(resolve_threads(quick_config(0)), 6u);
  EXPECT_EQ(resolve_threads(quick_config(4)), 4u);
  ASSERT_EQ(unsetenv("FX8_THREADS"), 0);
  EXPECT_GE(resolve_threads(quick_config(0)), 1u);
}

}  // namespace
}  // namespace repro::core
