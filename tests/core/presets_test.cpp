// The canonical configuration presets: every bench/example/test scale
// lives in core/presets.hpp, so these assertions pin the study contract
// (seeds and populations) that the artifact tolerances are calibrated
// against.
#include "core/presets.hpp"

#include <gtest/gtest.h>

namespace repro::core::presets {
namespace {

TEST(Presets, BenchStudyIsThePaperScalePopulation) {
  const StudyConfig config = bench_study();
  EXPECT_EQ(config.samples_per_session, 12u);
  EXPECT_EQ(config.sampling.interval_cycles, 80000u);
  EXPECT_EQ(config.warmup_cycles, 20000u);
  EXPECT_EQ(config.seed, 0x19870301u);
}

TEST(Presets, QuickStudyKeepsTheSeed) {
  const StudyConfig config = quick_study();
  EXPECT_EQ(config.seed, bench_study().seed);
  EXPECT_LT(config.samples_per_session, bench_study().samples_per_session);
  EXPECT_LT(config.sampling.interval_cycles,
            bench_study().sampling.interval_cycles);
}

TEST(Presets, BenchTransitionIsThePaperScaleCaptureSet) {
  const TransitionConfig config = bench_transition();
  EXPECT_EQ(config.captures, 60u);
  EXPECT_EQ(config.capture_timeout, 400000u);
  EXPECT_EQ(config.seed, 0x19870402u);
}

TEST(Presets, QuickTransitionShrinksOnlyTheCaptureCount) {
  const TransitionConfig quick = quick_transition();
  const TransitionConfig full = bench_transition();
  EXPECT_LT(quick.captures, full.captures);
  EXPECT_EQ(quick.capture_timeout, full.capture_timeout);
  EXPECT_EQ(quick.seed, full.seed);
}

TEST(Presets, TestScalesAreStrictlySmallerThanBenchScales) {
  EXPECT_LT(example_study().samples_per_session,
            bench_study().samples_per_session);
  EXPECT_LT(small_study().samples_per_session,
            quick_study().samples_per_session);
  EXPECT_LT(tiny_study().samples_per_session,
            small_study().samples_per_session);
  EXPECT_LT(tiny_transition().captures, quick_transition().captures);
}

}  // namespace
}  // namespace repro::core::presets
