#include "core/sample.hpp"

#include <gtest/gtest.h>

namespace repro::core {
namespace {

instr::SampleRecord synthetic_record(std::uint64_t eight_active,
                                     std::uint64_t one_active,
                                     std::uint64_t idle) {
  instr::SampleRecord record;
  record.interval_cycles = 1000;
  instr::ProbeRecord probe;
  probe.active_mask = 0xFF;
  for (CeId ce = 0; ce < 8; ++ce) {
    probe.ce_ops[ce] = mem::CeBusOp::kRead;
  }
  probe.ce_ops[0] = mem::CeBusOp::kReadMiss;
  for (std::uint64_t i = 0; i < eight_active; ++i) {
    record.hw.accumulate(probe);
  }
  instr::ProbeRecord serial;
  serial.active_mask = 0x01;
  serial.ce_ops[0] = mem::CeBusOp::kRead;
  for (std::uint64_t i = 0; i < one_active; ++i) {
    record.hw.accumulate(serial);
  }
  instr::ProbeRecord idle_probe;
  for (std::uint64_t i = 0; i < idle; ++i) {
    record.hw.accumulate(idle_probe);
  }
  record.sw.ce_page_faults_user = 30;
  record.sw.ce_page_faults_system = 12;
  return record;
}

TEST(AnalyzedSample, DerivesMeasuresFromCounts) {
  const auto sample = analyze(synthetic_record(50, 30, 20));
  EXPECT_NEAR(sample.measures.cw, 0.5, 1e-9);
  ASSERT_TRUE(sample.measures.pc_defined);
  EXPECT_DOUBLE_EQ(sample.measures.pc, 8.0);
  // 1 miss per 8-active record over 8 buses per record.
  EXPECT_NEAR(sample.miss_rate, 50.0 / 800.0, 1e-9);
  // Busy: 8 ops per 8-active record + 1 per serial record.
  EXPECT_NEAR(sample.bus_busy, (50.0 * 8 + 30.0) / 800.0, 1e-9);
  EXPECT_DOUBLE_EQ(sample.page_fault_rate, 42.0);
}

TEST(AnalyzedSample, AllIdleSampleHasUndefinedPc) {
  const auto sample = analyze(synthetic_record(0, 0, 100));
  EXPECT_DOUBLE_EQ(sample.measures.cw, 0.0);
  EXPECT_FALSE(sample.measures.pc_defined);
  EXPECT_DOUBLE_EQ(sample.miss_rate, 0.0);
  EXPECT_DOUBLE_EQ(sample.bus_busy, 0.0);
}

TEST(Columns, ExtractorsAlignWithSamples) {
  std::vector<instr::SampleRecord> records = {
      synthetic_record(50, 30, 20), synthetic_record(0, 0, 100),
      synthetic_record(100, 0, 0)};
  const auto samples = analyze_all(records);
  ASSERT_EQ(samples.size(), 3u);

  const auto cw = column_cw(samples);
  EXPECT_EQ(cw.size(), 3u);
  EXPECT_NEAR(cw[2], 1.0, 1e-9);

  // Pc column skips the undefined sample.
  const auto pc = column_pc(samples);
  EXPECT_EQ(pc.size(), 2u);

  EXPECT_EQ(column_miss_rate(samples).size(), 3u);
  EXPECT_EQ(column_bus_busy(samples).size(), 3u);
  EXPECT_EQ(column_page_fault_rate(samples).size(), 3u);
}

TEST(Columns, WithDefinedPcFilters) {
  std::vector<instr::SampleRecord> records = {
      synthetic_record(10, 0, 90), synthetic_record(0, 100, 0)};
  const auto samples = analyze_all(records);
  const auto filtered = with_defined_pc(samples);
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_TRUE(filtered[0].measures.pc_defined);
}

}  // namespace
}  // namespace repro::core
