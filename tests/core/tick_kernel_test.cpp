// Fused hot-tick kernel differential tests.
//
// Machine::tick_block(n) must be bit-identical to calling tick() n times
// for every block boundary the session controller can produce: blocks of
// one, blocks cut short by a cluster control event, blocks requested past
// the end of the running job, and arbitrary interleavings of block and
// naive advancement. The controller-level case drives blocks against
// probe-latch clamps with intervals small enough that every block abuts
// an acquisition window.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "fx8/machine.hpp"
#include "instr/session_controller.hpp"
#include "os/system.hpp"
#include "workload/generator.hpp"
#include "workload/presets.hpp"

namespace repro::core {
namespace {

isa::KernelSpec tk_kernel() {
  isa::KernelSpec k;
  k.steps = 6;
  k.compute_cycles = 4;
  k.compute_jitter = 2;
  k.loads_per_step = 2;
  k.stores_per_step = 1;
  k.working_set_bytes = 48 * 1024;
  return k;
}

isa::Program tk_program(std::uint64_t trip) {
  isa::ConcurrentLoopPhase loop;
  loop.trip_count = trip;
  loop.body = tk_kernel();
  return isa::ProgramBuilder("tick-kernel")
      .data_base(0x200000)
      .serial(tk_kernel(), 2)
      .concurrent_loop(loop)
      .build();
}

/// Probe-visible and accounting state of a standalone machine, compared
/// after naive and block-ticked runs reach the same cycle.
struct MachineState {
  Cycle now = 0;
  LaneMask active_mask = 0;
  std::array<mem::CeBusOp, kMaxCes> ce_ops{};
  std::array<mem::MemBusOp, 2> mem_ops{};
  std::vector<fx8::CeStats> ce_stats;
  fx8::ClusterStats cluster;
  cache::SharedCacheStats cache;
  std::uint64_t control_events = 0;

  static MachineState capture(fx8::Machine& m) {
    MachineState s;
    s.now = m.now();
    s.active_mask = m.active_mask();
    for (CeId ce = 0; ce < m.cluster().width(); ++ce) {
      s.ce_ops[ce] = m.ce_bus_op(ce);
      s.ce_stats.push_back(m.cluster().ce(ce).stats());
    }
    for (std::uint32_t b = 0; b < 2; ++b) {
      s.mem_ops[b] = m.mem_bus_op(b);
    }
    s.cluster = m.cluster().stats();
    s.cache = m.shared_cache().stats();
    s.control_events = m.cluster().control_events();
    return s;
  }
};

void expect_same_state(const MachineState& a, const MachineState& b) {
  EXPECT_EQ(a.now, b.now);
  EXPECT_EQ(a.active_mask, b.active_mask) << "at cycle " << a.now;
  EXPECT_EQ(a.ce_ops, b.ce_ops) << "at cycle " << a.now;
  EXPECT_EQ(a.mem_ops, b.mem_ops) << "at cycle " << a.now;
  EXPECT_EQ(a.control_events, b.control_events) << "at cycle " << a.now;
  ASSERT_EQ(a.ce_stats.size(), b.ce_stats.size());
  for (std::size_t ce = 0; ce < a.ce_stats.size(); ++ce) {
    EXPECT_EQ(a.ce_stats[ce].busy_cycles, b.ce_stats[ce].busy_cycles);
    EXPECT_EQ(a.ce_stats[ce].compute_cycles, b.ce_stats[ce].compute_cycles);
    EXPECT_EQ(a.ce_stats[ce].mem_accesses, b.ce_stats[ce].mem_accesses);
    EXPECT_EQ(a.ce_stats[ce].miss_wait_cycles,
              b.ce_stats[ce].miss_wait_cycles);
    EXPECT_EQ(a.ce_stats[ce].fault_wait_cycles,
              b.ce_stats[ce].fault_wait_cycles);
    EXPECT_EQ(a.ce_stats[ce].xbar_conflict_cycles,
              b.ce_stats[ce].xbar_conflict_cycles);
    EXPECT_EQ(a.ce_stats[ce].instances_completed,
              b.ce_stats[ce].instances_completed);
  }
  EXPECT_EQ(a.cluster.iterations_completed, b.cluster.iterations_completed);
  EXPECT_EQ(a.cluster.jobs_completed, b.cluster.jobs_completed);
  EXPECT_EQ(a.cache.accesses, b.cache.accesses);
  EXPECT_EQ(a.cache.misses, b.cache.misses);
}

// A block of one must behave exactly like one naive tick, cycle by cycle
// through an entire job, including the probe-visible bus opcodes that a
// latch would see on every boundary.
TEST(TickKernel, BlockOfOneMatchesSingleTick) {
  fx8::NoFaultMmu mmu_a;
  fx8::NoFaultMmu mmu_b;
  fx8::Machine naive(fx8::MachineConfig::fx8(), mmu_a);
  fx8::Machine block(fx8::MachineConfig::fx8(), mmu_b);
  const isa::Program prog = tk_program(24);
  naive.cluster().load(&prog, 1);
  block.cluster().load(&prog, 1);
  Cycle guard = 0;
  while (naive.cluster().busy()) {
    naive.tick();
    EXPECT_EQ(block.tick_block(1), 1u);
    expect_same_state(MachineState::capture(naive),
                      MachineState::capture(block));
    ASSERT_LT(++guard, 1'000'000u);
  }
  EXPECT_FALSE(block.cluster().busy());
}

// A block spanning a cluster control event must stop at the end of the
// cycle that raised it (never after), leaving exactly the state the naive
// loop has at that cycle.
TEST(TickKernel, BlockStopsAtClusterJobCompletion) {
  fx8::NoFaultMmu mmu_a;
  fx8::NoFaultMmu mmu_b;
  fx8::Machine naive(fx8::MachineConfig::fx8(), mmu_a);
  fx8::Machine block(fx8::MachineConfig::fx8(), mmu_b);
  const isa::Program prog = tk_program(16);
  naive.cluster().load(&prog, 1);
  block.cluster().load(&prog, 1);
  // Request far more cycles than the job needs: each call must return
  // early at the completion event, not run past it.
  while (block.cluster().busy()) {
    const std::uint64_t events_before = block.cluster().control_events();
    const Cycle advanced = block.tick_block(1'000'000);
    ASSERT_GE(advanced, 1u);
    if (block.cluster().control_events() != events_before) {
      // The block stopped on the event cycle: the job completed exactly
      // at block.now(), so the event is one cycle old at most.
      EXPECT_EQ(block.cluster().control_events(), events_before + 1);
    }
  }
  while (naive.cluster().busy()) {
    naive.tick();
  }
  expect_same_state(MachineState::capture(naive),
                    MachineState::capture(block));
}

// A block requested past the end of the loaded job returns early with the
// cycles actually used; the remaining budget is never silently burned on
// an idle machine.
TEST(TickKernel, BlockPastJobEndReturnsEarly) {
  fx8::NoFaultMmu mmu_a;
  fx8::NoFaultMmu mmu_b;
  fx8::Machine naive(fx8::MachineConfig::fx8(), mmu_a);
  fx8::Machine block(fx8::MachineConfig::fx8(), mmu_b);
  const isa::Program prog = tk_program(8);
  naive.cluster().load(&prog, 1);
  while (naive.cluster().busy()) {
    naive.tick();
  }
  const Cycle job_cycles = naive.now();

  block.cluster().load(&prog, 1);
  Cycle advanced = 0;
  while (block.cluster().busy()) {
    advanced += block.tick_block(job_cycles * 10);
  }
  EXPECT_EQ(advanced, job_cycles);
  EXPECT_EQ(block.now(), naive.now());
  expect_same_state(MachineState::capture(naive),
                    MachineState::capture(block));
}

// Arbitrary interleavings of naive ticks and block runs must leave the
// hot lanes (phase, countdowns, per-cycle stat counters) and the cold
// per-component state agreeing with the pure naive run.
TEST(TickKernel, MixedBlockAndNaiveRunsStayConsistent) {
  fx8::NoFaultMmu mmu_a;
  fx8::NoFaultMmu mmu_b;
  fx8::Machine naive(fx8::MachineConfig::fx8(), mmu_a);
  fx8::Machine mixed(fx8::MachineConfig::fx8(), mmu_b);
  const isa::Program prog = tk_program(40);
  naive.cluster().load(&prog, 1);
  mixed.cluster().load(&prog, 1);
  // Deterministic irregular schedule: naive singles, odd-sized blocks,
  // and blocks of one, repeated until the job drains.
  const std::array<Cycle, 6> blocks = {1, 7, 13, 1, 29, 3};
  std::size_t next = 0;
  while (mixed.cluster().busy()) {
    const Cycle want = blocks[next];
    next = (next + 1) % blocks.size();
    if (want == 1) {
      mixed.tick();
      continue;
    }
    Cycle done = 0;
    while (done < want && mixed.cluster().busy()) {
      done += mixed.tick_block(want - done);
    }
  }
  while (naive.cluster().busy()) {
    naive.tick();
  }
  expect_same_state(MachineState::capture(naive),
                    MachineState::capture(mixed));
}

// Controller-level: with acquisition intervals so tight that every quiet
// burst is clamped against a probe-latch boundary, the fast-forward path
// (bulk jumps + fused blocks) must reproduce the naive sample records and
// machine clock bit-for-bit.
TEST(TickKernel, BlocksAgainstProbeLatchBoundaries) {
  auto run = [](bool fast_forward) {
    os::SystemConfig sys_config;
    os::System system(sys_config);
    workload::WorkloadGenerator generator(
        workload::session_presets()[2] /* session-3-numeric-heavy */,
        0xB10CB10C);
    instr::SamplingConfig sampling;
    sampling.interval_cycles = 2048;  // 4 x 256-deep acquisitions: latches
    sampling.snapshots_per_sample = 4;
    sampling.buffer_depth = 256;      // cover half of every interval.
    sampling.fast_forward = fast_forward;
    instr::SessionController controller(system, generator, sampling,
                                        0x7E57B10C);
    controller.advance(1000);
    auto records = controller.run_session(6);
    return std::pair{std::move(records), system.now()};
  };
  const auto [naive_records, naive_now] = run(false);
  const auto [fast_records, fast_now] = run(true);
  EXPECT_EQ(naive_now, fast_now);
  ASSERT_EQ(naive_records.size(), fast_records.size());
  for (std::size_t r = 0; r < naive_records.size(); ++r) {
    EXPECT_EQ(naive_records[r].hw.ceop, fast_records[r].hw.ceop)
        << "sample " << r;
    EXPECT_EQ(naive_records[r].hw.membop, fast_records[r].hw.membop)
        << "sample " << r;
    EXPECT_EQ(naive_records[r].hw.num, fast_records[r].hw.num)
        << "sample " << r;
    EXPECT_EQ(naive_records[r].sw.jobs_completed,
              fast_records[r].sw.jobs_completed);
  }
}

// --- Width-native multi-cluster kernel ---------------------------------
//
// The multi-cluster tick_block runs one machine-wide lane pass per cycle
// and peels only slow lanes into their owning cluster; these suites pin
// that path bit-identical to per-cluster naive ticking across widths
// 16/32/64, with detached splits, and with the scalar pass pinned
// against the dispatched one. The whole suite reruns under
// FX8_FORCE_SCALAR in CI, giving the scalar wide pass the same coverage.

/// Machine-wide probe/accounting state across every cluster.
struct WideState {
  Cycle now = 0;
  LaneMask active_mask = 0;
  std::vector<mem::CeBusOp> ce_ops;
  std::vector<fx8::CeStats> ce_stats;
  std::vector<fx8::ClusterStats> clusters;
  cache::SharedCacheStats cache;
  std::uint64_t control_events = 0;
  std::uint64_t fabric_conflicts = 0;

  static WideState capture(fx8::Machine& m) {
    WideState s;
    s.now = m.now();
    s.active_mask = m.active_mask();
    for (CeId ce = 0; ce < m.total_ces(); ++ce) {
      s.ce_ops.push_back(m.ce_bus_op(ce));
    }
    for (std::uint32_t i = 0; i < m.n_clusters(); ++i) {
      for (CeId c = 0; c < m.cluster(i).width(); ++c) {
        s.ce_stats.push_back(m.cluster(i).ce(c).stats());
      }
      s.clusters.push_back(m.cluster(i).stats());
    }
    s.cache = m.shared_cache().stats();
    s.control_events = m.cluster(0).control_events();
    s.fabric_conflicts = m.fabric() ? m.fabric()->conflicts() : 0;
    return s;
  }
};

void expect_same_wide(const WideState& a, const WideState& b) {
  EXPECT_EQ(a.now, b.now);
  EXPECT_EQ(a.active_mask, b.active_mask) << "at cycle " << a.now;
  EXPECT_EQ(a.ce_ops, b.ce_ops) << "at cycle " << a.now;
  EXPECT_EQ(a.control_events, b.control_events) << "at cycle " << a.now;
  EXPECT_EQ(a.fabric_conflicts, b.fabric_conflicts) << "at cycle " << a.now;
  ASSERT_EQ(a.ce_stats.size(), b.ce_stats.size());
  for (std::size_t ce = 0; ce < a.ce_stats.size(); ++ce) {
    EXPECT_EQ(a.ce_stats[ce].busy_cycles, b.ce_stats[ce].busy_cycles)
        << "ce " << ce;
    EXPECT_EQ(a.ce_stats[ce].compute_cycles, b.ce_stats[ce].compute_cycles)
        << "ce " << ce;
    EXPECT_EQ(a.ce_stats[ce].mem_accesses, b.ce_stats[ce].mem_accesses)
        << "ce " << ce;
    EXPECT_EQ(a.ce_stats[ce].miss_wait_cycles,
              b.ce_stats[ce].miss_wait_cycles)
        << "ce " << ce;
    EXPECT_EQ(a.ce_stats[ce].fault_wait_cycles,
              b.ce_stats[ce].fault_wait_cycles)
        << "ce " << ce;
    EXPECT_EQ(a.ce_stats[ce].xbar_conflict_cycles,
              b.ce_stats[ce].xbar_conflict_cycles)
        << "ce " << ce;
    EXPECT_EQ(a.ce_stats[ce].instances_completed,
              b.ce_stats[ce].instances_completed)
        << "ce " << ce;
  }
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (std::size_t i = 0; i < a.clusters.size(); ++i) {
    EXPECT_EQ(a.clusters[i].jobs_completed, b.clusters[i].jobs_completed);
    EXPECT_EQ(a.clusters[i].loops_completed, b.clusters[i].loops_completed);
    EXPECT_EQ(a.clusters[i].iterations_completed,
              b.clusters[i].iterations_completed);
    EXPECT_EQ(a.clusters[i].serial_reps_completed,
              b.clusters[i].serial_reps_completed);
    EXPECT_EQ(a.clusters[i].dependence_wait_cycles,
              b.clusters[i].dependence_wait_cycles);
  }
  EXPECT_EQ(a.cache.accesses, b.cache.accesses);
  EXPECT_EQ(a.cache.misses, b.cache.misses);
}

std::vector<fx8::MachineConfig> wide_configs() {
  return {fx8::MachineConfig::fx16(), fx8::MachineConfig::fx32(),
          fx8::MachineConfig::fx64()};
}

isa::Program wk_serial_program(std::uint64_t reps) {
  return isa::ProgramBuilder("wide-detached")
      .data_base(0x900000)
      .serial(tk_kernel(), reps)
      .build();
}

/// Per-cluster jobs of staggered lengths so completions (control events)
/// land on different cycles in different clusters.
std::vector<isa::Program> wk_programs(std::uint32_t n_clusters) {
  std::vector<isa::Program> progs;
  for (std::uint32_t i = 0; i < n_clusters; ++i) {
    progs.push_back(tk_program(8 + 5 * i));
  }
  return progs;
}

void wk_load(fx8::Machine& m, const std::vector<isa::Program>& progs) {
  for (std::uint32_t i = 0; i < m.n_clusters(); ++i) {
    m.cluster(i).load(&progs[i], i + 1);
  }
}

bool wk_any_busy(fx8::Machine& m) {
  for (std::uint32_t i = 0; i < m.n_clusters(); ++i) {
    if (m.cluster(i).busy()) {
      return true;
    }
    for (std::uint32_t slot = 0; slot < m.cluster(i).detached_count();
         ++slot) {
      if (m.cluster(i).detached_busy(slot)) {
        return true;
      }
    }
  }
  return false;
}

// The wide block path must reproduce per-cluster naive ticking
// bit-identically at every width preset, with each block stopping at
// the end of a cycle that raised a control event.
TEST(WideKernel, MultiClusterBlockMatchesNaiveAcrossWidths) {
  for (const auto& config : wide_configs()) {
    fx8::NoFaultMmu mmu_a;
    fx8::NoFaultMmu mmu_b;
    fx8::Machine naive(config, mmu_a);
    fx8::Machine block(config, mmu_b);
    const auto progs = wk_programs(naive.n_clusters());
    wk_load(naive, progs);
    wk_load(block, progs);
    Cycle guard = 0;
    while (wk_any_busy(naive)) {
      naive.tick();
      ASSERT_LT(++guard, 10'000'000u);
    }
    while (wk_any_busy(block)) {
      const std::uint64_t events_before = block.cluster(0).control_events();
      ASSERT_GE(block.tick_block(1'000'000), 1u);
      if (wk_any_busy(block)) {
        // An early stop mid-run can only be a control event's.
        EXPECT_GT(block.cluster(0).control_events(), events_before);
      }
    }
    expect_same_wide(WideState::capture(naive), WideState::capture(block));
  }
}

// Blocks of one against naive singles, cycle by cycle, on the two-cluster
// machine: every probe-visible boundary of the wide path lines up.
TEST(WideKernel, BlockOfOneMatchesSingleTickAtWidth16) {
  fx8::NoFaultMmu mmu_a;
  fx8::NoFaultMmu mmu_b;
  fx8::Machine naive(fx8::MachineConfig::fx16(), mmu_a);
  fx8::Machine block(fx8::MachineConfig::fx16(), mmu_b);
  const auto progs = wk_programs(naive.n_clusters());
  wk_load(naive, progs);
  wk_load(block, progs);
  Cycle guard = 0;
  while (wk_any_busy(naive)) {
    naive.tick();
    EXPECT_EQ(block.tick_block(1), 1u);
    expect_same_wide(WideState::capture(naive), WideState::capture(block));
    ASSERT_LT(++guard, 1'000'000u);
  }
  EXPECT_FALSE(wk_any_busy(block));
}

// Clusters split between loop work and detached serial processes: the
// peel must keep the detached lanes' service position, and detached
// completions must stop blocks exactly as cluster jobs do.
TEST(WideKernel, DetachedSplitMatchesNaiveAcrossWidths) {
  for (auto config : wide_configs()) {
    config.cluster.detached_ces = 2;
    fx8::NoFaultMmu mmu_a;
    fx8::NoFaultMmu mmu_b;
    fx8::Machine naive(config, mmu_a);
    fx8::Machine block(config, mmu_b);
    const auto progs = wk_programs(naive.n_clusters());
    const isa::Program detached_a = wk_serial_program(6);
    const isa::Program detached_b = wk_serial_program(9);
    const auto load_all = [&](fx8::Machine& m) {
      wk_load(m, progs);
      // Detached load on a subset of clusters, one or two slots each, so
      // live and empty slots coexist.
      for (std::uint32_t i = 0; i < m.n_clusters(); i += 2) {
        m.cluster(i).load_detached(0, &detached_a, 100 + i);
        if (i + 1 < m.n_clusters()) {
          m.cluster(i + 1).load_detached(1, &detached_b, 200 + i);
        }
      }
    };
    load_all(naive);
    load_all(block);
    Cycle guard = 0;
    while (wk_any_busy(naive)) {
      naive.tick();
      ASSERT_LT(++guard, 10'000'000u);
    }
    while (wk_any_busy(block)) {
      ASSERT_GE(block.tick_block(1'000'000), 1u);
    }
    expect_same_wide(WideState::capture(naive), WideState::capture(block));
  }
}

// Pinning the scalar pass must reproduce the dispatched (AVX2 where
// available) wide path exactly at every width: the machine-visible
// contract does not depend on the SIMD path taken.
TEST(WideKernel, ScalarPassMatchesDispatchedAcrossWidths) {
  for (const auto& config : wide_configs()) {
    fx8::NoFaultMmu mmu_a;
    fx8::NoFaultMmu mmu_b;
    fx8::Machine dispatched(config, mmu_a);
    fx8::Machine scalar(config, mmu_b);
    scalar.set_lane_pass(&fx8::lane_pass_scalar);
    const auto progs = wk_programs(dispatched.n_clusters());
    wk_load(dispatched, progs);
    wk_load(scalar, progs);
    while (wk_any_busy(dispatched)) {
      dispatched.tick_block(4096);
    }
    while (wk_any_busy(scalar)) {
      scalar.tick_block(4096);
    }
    expect_same_wide(WideState::capture(dispatched),
                     WideState::capture(scalar));
  }
}

// The horizon-driven fast-forward loop (skip quiet stretches, tick the
// rest) must match naive ticking at every width — this is the path that
// leans on the per-cluster horizon cache, so a stale or inexact cache
// entry shows up as state divergence here.
TEST(WideKernel, FastForwardMatchesNaiveAcrossWidths) {
  for (const auto& config : wide_configs()) {
    fx8::NoFaultMmu mmu_a;
    fx8::NoFaultMmu mmu_b;
    fx8::Machine naive(config, mmu_a);
    fx8::Machine ff(config, mmu_b);
    const auto progs = wk_programs(naive.n_clusters());
    wk_load(naive, progs);
    wk_load(ff, progs);
    Cycle guard = 0;
    while (wk_any_busy(naive)) {
      naive.tick();
      ASSERT_LT(++guard, 10'000'000u);
    }
    while (wk_any_busy(ff)) {
      const Cycle h = ff.quiet_horizon();
      if (h == 0 || h == kHorizonNever) {
        ff.tick();
      } else {
        ff.skip(h);
      }
    }
    // Drain to the naive clock (idle machines tick without events).
    while (ff.now() < naive.now()) {
      ff.tick();
    }
    expect_same_wide(WideState::capture(naive), WideState::capture(ff));
  }
}

}  // namespace
}  // namespace repro::core
