#include "core/regression_models.hpp"

#include <gtest/gtest.h>

#include "base/expect.hpp"
#include "base/rng.hpp"

namespace repro::core {
namespace {

/// Build a synthetic analyzed sample with chosen measures.
AnalyzedSample synthetic_sample(double cw, double pc, double miss,
                                double busy, double faults) {
  AnalyzedSample sample;
  sample.measures.cw = cw;
  sample.measures.pc = pc;
  sample.measures.pc_defined = cw > 0.0;
  sample.miss_rate = miss;
  sample.bus_busy = busy;
  sample.page_fault_rate = faults;
  return sample;
}

std::vector<AnalyzedSample> quadratic_population(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<AnalyzedSample> samples;
  for (int i = 0; i < 300; ++i) {
    const double cw = rng.uniform01();
    const double pc = 2.0 + 6.0 * rng.uniform01();
    const double miss = 0.002 + 0.02 * cw * cw + rng.normal(0, 0.002);
    const double busy = 0.05 + 0.3 * cw + rng.normal(0, 0.01);
    const double faults = 100 * cw + rng.normal(0, 10);
    samples.push_back(synthetic_sample(cw, pc, miss, busy, faults));
  }
  return samples;
}

TEST(RegressionModels, MidpointsMatchPaper) {
  const auto cw = cw_midpoints();
  ASSERT_EQ(cw.size(), 11u);
  EXPECT_DOUBLE_EQ(cw.front(), 0.0);
  EXPECT_DOUBLE_EQ(cw.back(), 1.0);
  const auto pc = pc_midpoints();
  ASSERT_EQ(pc.size(), 7u);
  EXPECT_DOUBLE_EQ(pc.front(), 2.0);
  EXPECT_DOUBLE_EQ(pc.back(), 8.0);
}

TEST(RegressionModels, RecoversPlantedCwRelationship) {
  const auto samples = quadratic_population(5);
  const MedianModel model =
      fit_model(samples, SystemMeasure::kMissRate, Regressor::kCw);
  ASSERT_TRUE(model.fit.has_value());
  EXPECT_EQ(model.fit->coeffs.size(), 3u);
  // Planted: miss = 0.002 + 0.02 cw^2.
  EXPECT_NEAR(model.predict(1.0), 0.022, 0.004);
  EXPECT_NEAR(model.predict(0.0), 0.002, 0.004);
  EXPECT_GT(model.r_squared(), 0.8);
  EXPECT_GE(model.median_points.size(), 5u);
}

TEST(RegressionModels, UncorrelatedPcHasWeakModel) {
  // Miss rate was planted independent of Pc.
  const auto samples = quadratic_population(5);
  const MedianModel model =
      fit_model(samples, SystemMeasure::kMissRate, Regressor::kPc);
  // The medians vary only by noise; the prediction range is tiny compared
  // to the Cw model's range.
  const double spread =
      std::abs(model.predict(8.0) - model.predict(2.0));
  EXPECT_LT(spread, 0.01);
}

TEST(RegressionModels, FitAllProducesSixModels) {
  const auto samples = quadratic_population(7);
  const auto models = fit_all_models(samples);
  ASSERT_EQ(models.size(), 6u);
  int cw_count = 0;
  int pc_count = 0;
  for (const MedianModel& model : models) {
    cw_count += model.regressor == Regressor::kCw;
    pc_count += model.regressor == Regressor::kPc;
  }
  EXPECT_EQ(cw_count, 3);
  EXPECT_EQ(pc_count, 3);
}

TEST(RegressionModels, EmptySamplesThrow) {
  const std::vector<AnalyzedSample> none;
  EXPECT_THROW(
      (void)fit_model(none, SystemMeasure::kMissRate, Regressor::kCw),
      ContractViolation);
}

TEST(RegressionModels, MeasureNamesAreDistinct) {
  EXPECT_NE(measure_name(SystemMeasure::kMissRate),
            measure_name(SystemMeasure::kBusBusy));
  EXPECT_NE(measure_name(SystemMeasure::kBusBusy),
            measure_name(SystemMeasure::kPageFaultRate));
}

}  // namespace
}  // namespace repro::core
