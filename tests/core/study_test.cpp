#include "core/study.hpp"

#include <gtest/gtest.h>

#include "core/report.hpp"
#include "core/transition.hpp"

namespace repro::core {
namespace {

StudyConfig quick_config() {
  StudyConfig config;
  config.samples_per_session = 2;
  config.sampling.interval_cycles = 15000;
  config.warmup_cycles = 3000;
  return config;
}

TEST(Study, SessionProducesSamplesAndTotals) {
  workload::WorkloadMix mix = workload::session_presets()[2];
  const SessionResult result = run_session(mix, quick_config(), 1);
  EXPECT_EQ(result.name, mix.name);
  ASSERT_EQ(result.samples.size(), 2u);
  EXPECT_EQ(result.totals.records, 2u * 5 * 512);
  // The overall measures derive from the totals.
  EXPECT_GE(result.overall.cw, 0.0);
  EXPECT_LE(result.overall.cw, 1.0);
}

TEST(Study, StudyAggregatesSessions) {
  const auto mixes = workload::session_presets();
  std::vector<workload::WorkloadMix> two(mixes.begin(), mixes.begin() + 2);
  const StudyResult study = run_study(two, quick_config());
  ASSERT_EQ(study.sessions.size(), 2u);
  EXPECT_EQ(study.totals.records,
            study.sessions[0].totals.records +
                study.sessions[1].totals.records);
  EXPECT_EQ(study.all_samples().size(), 4u);
}

TEST(Study, DeterministicForConfigSeed) {
  const auto mixes = workload::session_presets();
  std::vector<workload::WorkloadMix> one(mixes.begin(), mixes.begin() + 1);
  const StudyResult a = run_study(one, quick_config());
  const StudyResult b = run_study(one, quick_config());
  EXPECT_EQ(a.totals.num, b.totals.num);
  EXPECT_EQ(a.overall.cw, b.overall.cw);
}

TEST(Study, DifferentSeedsDiffer) {
  const auto mixes = workload::session_presets();
  std::vector<workload::WorkloadMix> one(mixes.begin() + 2,
                                         mixes.begin() + 3);
  StudyConfig config_a = quick_config();
  StudyConfig config_b = quick_config();
  config_b.seed = config_a.seed + 1;
  const StudyResult a = run_study(one, config_a);
  const StudyResult b = run_study(one, config_b);
  EXPECT_NE(a.totals.num, b.totals.num);
}

TEST(Study, ConcurrentHeavySessionHasHigherCw) {
  const auto mixes = workload::session_presets();
  // session-6-batch-numeric vs session-9-serial-day.
  const SessionResult heavy = run_session(mixes[5], quick_config(), 3);
  const SessionResult light = run_session(mixes[8], quick_config(), 3);
  EXPECT_GT(heavy.overall.cw, light.overall.cw);
}

TEST(Report, Table2RendersAllColumns) {
  workload::WorkloadMix mix = workload::session_presets()[2];
  const SessionResult result = run_session(mix, quick_config(), 1);
  const std::string table = render_table2(result.overall);
  EXPECT_NE(table.find("c0"), std::string::npos);
  EXPECT_NE(table.find("c8"), std::string::npos);
  EXPECT_NE(table.find("Cw"), std::string::npos);
  EXPECT_NE(table.find("Pc"), std::string::npos);
}

TEST(Report, SessionTableListsAllSessions) {
  const auto mixes = workload::session_presets();
  std::vector<workload::WorkloadMix> two(mixes.begin(), mixes.begin() + 2);
  const StudyResult study = run_study(two, quick_config());
  const std::string table = render_session_table(study.sessions);
  EXPECT_NE(table.find(mixes[0].name), std::string::npos);
  EXPECT_NE(table.find(mixes[1].name), std::string::npos);
}

TEST(Transition, StudyCapturesTransitions) {
  TransitionConfig config;
  config.captures = 3;
  config.capture_timeout = 300000;
  config.warmup_cycles = 3000;
  const TransitionResult result = run_transition_study(
      workload::high_concurrency_mix(), config);
  EXPECT_GT(result.captures_completed, 0u);
  EXPECT_GT(result.transition_records(), 0u);
  // Shares over transition states sum to 1.
  double share_sum = 0.0;
  for (std::uint32_t j = 2; j < 8; ++j) {
    share_sum += result.transition_share(j);
  }
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
}

TEST(Transition, EmptyResultHasZeroShares) {
  TransitionResult empty;
  EXPECT_DOUBLE_EQ(empty.transition_share(2), 0.0);
  EXPECT_EQ(empty.transition_records(), 0u);
}

}  // namespace
}  // namespace repro::core
