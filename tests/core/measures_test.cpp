#include "core/measures.hpp"

#include <gtest/gtest.h>

#include <array>
#include <numeric>
#include <vector>

#include "base/expect.hpp"
#include "base/rng.hpp"

namespace repro::core {
namespace {

TEST(Measures, PaperTable2Example) {
  // Reconstruct a histogram with the paper's Table 2 proportions:
  // c8 = 0.2795, Cw = 0.3506, Pc = 7.66.
  const std::vector<std::uint64_t> counts = {
      4142, 2351, 100, 15, 22, 5, 25, 545, 2795};  // total 10000
  const auto m = ConcurrencyMeasures::from_counts(counts);
  EXPECT_NEAR(m.c[8], 0.2795, 1e-9);
  EXPECT_NEAR(m.cw, 0.3507, 1e-9);
  EXPECT_TRUE(m.pc_defined);
  EXPECT_NEAR(m.pc, 7.61, 0.01);
}

TEST(Measures, AllSerialHasZeroCwUndefinedPc) {
  const std::vector<std::uint64_t> counts = {10, 90, 0, 0, 0, 0, 0, 0, 0};
  const auto m = ConcurrencyMeasures::from_counts(counts);
  EXPECT_DOUBLE_EQ(m.cw, 0.0);
  EXPECT_FALSE(m.pc_defined);
}

TEST(Measures, AllEightActiveGivesCwOnePcEight) {
  const std::vector<std::uint64_t> counts = {0, 0, 0, 0, 0, 0, 0, 0, 100};
  const auto m = ConcurrencyMeasures::from_counts(counts);
  EXPECT_DOUBLE_EQ(m.cw, 1.0);
  ASSERT_TRUE(m.pc_defined);
  EXPECT_DOUBLE_EQ(m.pc, 8.0);
  EXPECT_DOUBLE_EQ(m.c_cond[8], 1.0);
}

TEST(Measures, TwoActiveOnlyGivesPcTwo) {
  const std::vector<std::uint64_t> counts = {0, 0, 50, 0, 0, 0, 0, 0, 0};
  const auto m = ConcurrencyMeasures::from_counts(counts);
  ASSERT_TRUE(m.pc_defined);
  EXPECT_DOUBLE_EQ(m.pc, 2.0);
}

TEST(Measures, NarrowWidthHistogramsWork) {
  // A 2-CE machine: counts for 0, 1, 2 active.
  const std::vector<std::uint64_t> counts = {10, 30, 60};
  const auto m = ConcurrencyMeasures::from_counts(counts);
  EXPECT_EQ(m.width, 2u);
  EXPECT_DOUBLE_EQ(m.cw, 0.6);
  EXPECT_DOUBLE_EQ(m.pc, 2.0);
}

TEST(Measures, EmptyHistogramThrows) {
  const std::vector<std::uint64_t> counts = {0, 0, 0};
  EXPECT_THROW((void)ConcurrencyMeasures::from_counts(counts),
               ContractViolation);
}

TEST(Measures, BadWidthThrows) {
  const std::vector<std::uint64_t> one = {5};
  EXPECT_THROW((void)ConcurrencyMeasures::from_counts(one),
               ContractViolation);
  const std::vector<std::uint64_t> sixteen(17, 5);
  EXPECT_NO_THROW((void)ConcurrencyMeasures::from_counts(sixteen));
  const std::vector<std::uint64_t> too_wide(kMaxTopologyCes + 2, 5);
  EXPECT_THROW((void)ConcurrencyMeasures::from_counts(too_wide),
               ContractViolation);
}

TEST(Measures, DescribeHandlesUndefinedPc) {
  const std::vector<std::uint64_t> counts = {1, 0, 0};
  const auto m = ConcurrencyMeasures::from_counts(counts);
  EXPECT_NE(m.describe().find("undefined"), std::string::npos);
}

// --- Property sweep: invariants hold for random histograms -------------

class MeasuresPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MeasuresPropertyTest, InvariantsHoldForRandomHistograms) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint64_t> counts(9);
    std::uint64_t total = 0;
    for (auto& count : counts) {
      count = rng.uniform(1000);
      total += count;
    }
    if (total == 0) {
      counts[0] = 1;
    }
    const auto m = ConcurrencyMeasures::from_counts(counts);

    // c_j sums to 1.
    const double c_sum =
        std::accumulate(m.c.begin(), m.c.end(), 0.0);
    EXPECT_NEAR(c_sum, 1.0, 1e-9);

    // Cw equals the concurrent mass and lies in [0,1].
    double concurrent_mass = 0.0;
    for (std::size_t j = 2; j <= 8; ++j) {
      concurrent_mass += m.c[j];
    }
    EXPECT_NEAR(m.cw, concurrent_mass, 1e-9);
    EXPECT_GE(m.cw, 0.0);
    EXPECT_LE(m.cw, 1.0);

    if (m.pc_defined) {
      // Pc in [2, 8]; conditional distribution sums to 1.
      EXPECT_GE(m.pc, 2.0);
      EXPECT_LE(m.pc, 8.0 + 1e-9);
      const double cond_sum =
          std::accumulate(m.c_cond.begin(), m.c_cond.end(), 0.0);
      EXPECT_NEAR(cond_sum, 1.0, 1e-9);
    } else {
      EXPECT_DOUBLE_EQ(m.cw, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeasuresPropertyTest,
                         ::testing::Values(1, 7, 42, 1987, 0xDEADBEEF));

}  // namespace
}  // namespace repro::core
