#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "base/rng.hpp"
#include "core/presets.hpp"
#include "core/study.hpp"
#include "core/transition.hpp"
#include "workload/presets.hpp"

namespace repro::core {
namespace {

instr::SamplingConfig tiny_sampling() {
  instr::SamplingConfig sampling;
  sampling.interval_cycles = 6000;
  return sampling;
}

/// The measurement rig the study engine schedules; member order matters
/// (the controller references the system and the generator).
struct Rig {
  os::System system;
  workload::WorkloadGenerator generator;
  instr::SessionController controller;

  Rig(const workload::WorkloadMix& mix, const os::SystemConfig& config,
      const instr::SamplingConfig& sampling, std::uint64_t seed)
      : system(config),
        generator(mix, mix64(seed ^ 0xABCD)),
        controller(system, generator, sampling, mix64(seed ^ 0x5A5A)) {}
};

std::unique_ptr<Rig> warm_rig(std::size_t preset = 2,
                              std::uint64_t seed = 0x1234) {
  auto rig = std::make_unique<Rig>(workload::session_presets()[preset],
                                   os::SystemConfig{}, tiny_sampling(), seed);
  rig->controller.advance(3000);
  return rig;
}

bool same_record(const instr::SampleRecord& a, const instr::SampleRecord& b) {
  return a.index == b.index && a.interval_cycles == b.interval_cycles &&
         a.hw.num == b.hw.num && a.hw.proc == b.hw.proc &&
         a.hw.ceop == b.hw.ceop && a.hw.membop == b.hw.membop &&
         a.hw.records == b.hw.records &&
         a.hw.ce_bus_cycles == b.hw.ce_bus_cycles &&
         a.sw.ce_page_faults_user == b.sw.ce_page_faults_user &&
         a.sw.ce_page_faults_system == b.sw.ce_page_faults_system &&
         a.sw.jobs_completed == b.sw.jobs_completed &&
         a.sw.context_switches == b.sw.context_switches;
}

TEST(CapsuleSession, RestoredRigIsBitIdentical) {
  auto original = warm_rig();
  (void)original->controller.run_session(2);

  const std::uint64_t before = session_digest(
      original->system, original->generator, original->controller);
  const auto sealed = save_session(original->system, original->generator,
                                   original->controller);

  // A freshly built rig (different seed, so genuinely different state)
  // must come back bit-identical after the load.
  auto restored = warm_rig(2, 0x9999);
  EXPECT_NE(session_digest(restored->system, restored->generator,
                           restored->controller),
            before);
  load_session(sealed, restored->system, restored->generator,
               restored->controller);
  EXPECT_EQ(session_digest(restored->system, restored->generator,
                           restored->controller),
            before);

  // And it must keep producing the same sample stream.
  const auto next_a = original->controller.run_session(1);
  const auto next_b = restored->controller.run_session(1);
  EXPECT_TRUE(same_record(next_a.front(), next_b.front()));
  EXPECT_EQ(session_digest(original->system, original->generator,
                           original->controller),
            session_digest(restored->system, restored->generator,
                           restored->controller));
}

TEST(CapsuleSession, ResumeContinuesTheSampleStream) {
  auto straight = warm_rig();
  const auto all = straight->controller.run_session(4);

  auto first_half = warm_rig();
  const auto head = first_half->controller.run_session(2);
  const auto sealed = save_session(first_half->system, first_half->generator,
                                   first_half->controller);
  auto resumed = warm_rig(2, 0x4242);
  load_session(sealed, resumed->system, resumed->generator,
               resumed->controller);
  const auto tail = resumed->controller.run_session(2);

  ASSERT_EQ(all.size(), 4u);
  EXPECT_TRUE(same_record(all[0], head[0]));
  EXPECT_TRUE(same_record(all[1], head[1]));
  EXPECT_TRUE(same_record(all[2], tail[0]));
  EXPECT_TRUE(same_record(all[3], tail[1]));
}

TEST(CapsuleSession, FingerprintMismatchRejected) {
  auto original = warm_rig();
  const auto sealed = save_session(original->system, original->generator,
                                   original->controller);

  os::SystemConfig narrow;
  narrow.machine.cluster.n_ces = 4;
  Rig other(workload::session_presets()[2], narrow, tiny_sampling(), 0x1234);
  EXPECT_THROW(
      load_session(sealed, other.system, other.generator, other.controller),
      capsule::CapsuleError);
}

TEST(CapsuleSystem, ArbitraryCycleSaveRestores) {
  // Nothing aligns the capsule to a sample or scheduler boundary: stop
  // at an odd mid-activity cycle and the restored system must still
  // track the original tick for tick.
  auto rig = warm_rig();
  rig->controller.advance(12347);

  const auto sealed = rig->system.save_capsule();
  os::System fresh((os::SystemConfig()));
  fresh.load_capsule(sealed);
  EXPECT_EQ(fresh.state_digest(), rig->system.state_digest());

  rig->system.run(777);
  fresh.run(777);
  EXPECT_EQ(fresh.state_digest(), rig->system.state_digest());
  EXPECT_EQ(fresh.now(), rig->system.now());
}

TEST(CapsuleSystem, LoadRejectsTamperedCapsule) {
  os::System system((os::SystemConfig()));
  system.run(500);
  auto sealed = system.save_capsule();

  auto version_skew = sealed;
  version_skew[8] = static_cast<std::uint8_t>(capsule::kFormatVersion + 3);
  EXPECT_THROW(system.load_capsule(version_skew), capsule::CapsuleError);

  auto corrupt = sealed;
  corrupt[corrupt.size() / 2] ^= 0x01;
  EXPECT_THROW(system.load_capsule(corrupt), capsule::CapsuleError);

  os::SystemConfig narrow;
  narrow.machine.cluster.n_ces = 4;
  os::System other(narrow);
  EXPECT_THROW(other.load_capsule(sealed), capsule::CapsuleError);
  // The fingerprint check fires before any state is touched.
  EXPECT_EQ(other.now(), 0u);
}

TEST(CapsuleStudy, ShardedStudyMatchesUninterrupted) {
  StudyConfig config = presets::tiny_study();
  config.threads = 1;
  const auto presets = workload::session_presets();
  const std::vector<workload::WorkloadMix> mixes(presets.begin(),
                                                 presets.begin() + 3);

  const StudyResult plain = run_study(mixes, config);
  config.checkpoint_every_samples = 1;
  const StudyResult sharded = run_study(mixes, config);

  EXPECT_EQ(plain.totals.num, sharded.totals.num);
  EXPECT_EQ(plain.totals.records, sharded.totals.records);
  EXPECT_EQ(plain.overall.cw, sharded.overall.cw);
  EXPECT_EQ(plain.overall.pc, sharded.overall.pc);
  ASSERT_EQ(plain.sessions.size(), sharded.sessions.size());
  for (std::size_t s = 0; s < plain.sessions.size(); ++s) {
    EXPECT_EQ(plain.sessions[s].totals.num, sharded.sessions[s].totals.num);
    EXPECT_EQ(plain.sessions[s].overall.cw, sharded.sessions[s].overall.cw);
  }
}

TEST(CapsuleTransition, CheckpointedCapturesMatch) {
  TransitionConfig config = presets::tiny_transition();
  const workload::WorkloadMix mix = workload::high_concurrency_mix();

  const TransitionResult plain = run_transition_study(mix, config);
  config.checkpoint_between_captures = true;
  const TransitionResult checkpointed = run_transition_study(mix, config);

  EXPECT_EQ(plain.state_counts, checkpointed.state_counts);
  EXPECT_EQ(plain.processor_counts, checkpointed.processor_counts);
  EXPECT_EQ(plain.captures_completed, checkpointed.captures_completed);
  EXPECT_EQ(plain.captures_timed_out, checkpointed.captures_timed_out);
}

TEST(CapsuleStudyCheckpoint, ProgressRoundTrips) {
  auto rig = warm_rig();
  StudyCheckpoint progress;
  progress.samples_total = 4;
  for (int i = 0; i < 2; ++i) {
    progress.records.push_back(rig->controller.run_session(1).front());
    ++progress.samples_done;
  }
  const auto sealed = save_study_checkpoint(progress, rig->system,
                                            rig->generator, rig->controller);

  auto resumed = warm_rig(2, 0x7777);
  const StudyCheckpoint loaded = load_study_checkpoint(
      sealed, resumed->system, resumed->generator, resumed->controller);

  EXPECT_EQ(loaded.samples_done, 2u);
  EXPECT_EQ(loaded.samples_total, 4u);
  ASSERT_EQ(loaded.records.size(), 2u);
  EXPECT_TRUE(same_record(loaded.records[0], progress.records[0]));
  EXPECT_TRUE(same_record(loaded.records[1], progress.records[1]));
  EXPECT_EQ(session_digest(resumed->system, resumed->generator,
                           resumed->controller),
            session_digest(rig->system, rig->generator, rig->controller));
}

TEST(DigestRoundTrip, EveryPresetAndWidthRestoresExactly) {
  // The matrix that surfaced the serialization bugs: every session mix,
  // at the measured width and a narrow one, saved mid-stream and
  // restored into a fresh rig.
  const auto presets = workload::session_presets();
  for (std::uint32_t n_ces : {8u, 4u}) {
    os::SystemConfig config;
    config.machine.cluster.n_ces = n_ces;
    for (std::size_t m = 0; m < presets.size(); ++m) {
      Rig rig(presets[m], config, tiny_sampling(), 0x1000 + m);
      rig.controller.advance(3000);
      (void)rig.controller.run_session(1);

      const std::uint64_t before =
          session_digest(rig.system, rig.generator, rig.controller);
      const auto sealed =
          save_session(rig.system, rig.generator, rig.controller);
      Rig fresh(presets[m], config, tiny_sampling(), 0xF000 + m);
      load_session(sealed, fresh.system, fresh.generator, fresh.controller);
      EXPECT_EQ(session_digest(fresh.system, fresh.generator,
                               fresh.controller),
                before)
          << "mix " << presets[m].name << " width " << n_ces;
    }
  }
}

TEST(DigestRoundTrip, MultiClusterWidthsRestoreExactly) {
  // The topology matrix: three mixes at every multi-cluster preset
  // width, saved mid-stream and restored byte-identically (the restored
  // rig re-seals to the very bytes it was loaded from).
  const auto presets = workload::session_presets();
  for (const std::uint32_t width : {16u, 32u, 64u}) {
    os::SystemConfig config;
    config.machine = width == 16   ? fx8::MachineConfig::fx16()
                     : width == 32 ? fx8::MachineConfig::fx32()
                                   : fx8::MachineConfig::fx64();
    for (std::size_t m = 0; m < 3; ++m) {
      Rig rig(presets[m], config, tiny_sampling(), 0x2000 + m);
      rig.controller.advance(3000);
      (void)rig.controller.run_session(1);

      const std::uint64_t before =
          session_digest(rig.system, rig.generator, rig.controller);
      const auto sealed =
          save_session(rig.system, rig.generator, rig.controller);
      Rig fresh(presets[m], config, tiny_sampling(), 0xE000 + m);
      load_session(sealed, fresh.system, fresh.generator, fresh.controller);
      EXPECT_EQ(session_digest(fresh.system, fresh.generator,
                               fresh.controller),
                before)
          << "mix " << presets[m].name << " width " << width;
      EXPECT_EQ(save_session(fresh.system, fresh.generator,
                             fresh.controller),
                sealed)
          << "mix " << presets[m].name << " width " << width;
    }
  }
}

TEST(DigestRoundTrip, DigestsDiscriminateStates) {
  auto a = warm_rig(2, 0x1234);
  auto b = warm_rig(2, 0x1235);
  EXPECT_NE(session_digest(a->system, a->generator, a->controller),
            session_digest(b->system, b->generator, b->controller));

  const std::uint64_t now = session_digest(a->system, a->generator,
                                           a->controller);
  a->controller.advance(1000);
  EXPECT_NE(session_digest(a->system, a->generator, a->controller), now);
}

}  // namespace
}  // namespace repro::core
