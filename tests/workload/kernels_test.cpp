#include "workload/kernels.hpp"

#include <gtest/gtest.h>

namespace repro::workload {
namespace {

TEST(Kernels, AllPaletteEntriesValidate) {
  const KernelTuning tuning;
  for (const isa::KernelSpec& spec : concurrent_palette(tuning)) {
    EXPECT_NO_THROW(spec.validate()) << spec.name;
  }
  for (const isa::KernelSpec& spec : serial_palette(tuning)) {
    EXPECT_NO_THROW(spec.validate()) << spec.name;
  }
}

TEST(Kernels, ConcurrentBodiesAreStreaming) {
  const KernelTuning tuning;
  for (const isa::KernelSpec& spec : concurrent_palette(tuning)) {
    EXPECT_EQ(spec.pattern, isa::AccessPattern::kStreaming) << spec.name;
    EXPECT_GT(spec.loads_per_step, 0u) << spec.name;
  }
}

TEST(Kernels, SerialBodiesHaveLocality) {
  const KernelTuning tuning;
  for (const isa::KernelSpec& spec : serial_palette(tuning)) {
    EXPECT_EQ(spec.pattern, isa::AccessPattern::kHotCold) << spec.name;
    EXPECT_GT(spec.hot_fraction, 0.5) << spec.name;
  }
}

TEST(Kernels, CompilerSpillsTheIcache) {
  const KernelTuning tuning;
  EXPECT_GT(compiler_body(tuning).code_bytes, 16u * 1024);
  EXPECT_LE(editor_body(tuning).code_bytes, 16u * 1024);
}

TEST(Kernels, ConcurrentBodiesRunUniformIterations) {
  // §4.3 mechanics depend on vectorized loop bodies having no data-
  // independent jitter; variability comes from branching (long paths).
  const KernelTuning tuning;
  EXPECT_EQ(matmul_row_body(tuning).compute_jitter, 0u);
  EXPECT_EQ(jacobi_row_body(tuning).compute_jitter, 0u);
  EXPECT_EQ(triad_body(tuning).compute_jitter, 0u);
}

TEST(Kernels, TuningControlsDataIntensity) {
  KernelTuning light;
  light.concurrent_compute_cycles = 20;
  KernelTuning heavy;
  heavy.concurrent_compute_cycles = 2;
  EXPECT_GT(matmul_row_body(light).compute_cycles,
            matmul_row_body(heavy).compute_cycles);
}

TEST(Kernels, DrawCoversPalette) {
  const KernelTuning tuning;
  const auto palette = concurrent_palette(tuning);
  Rng rng(9);
  std::set<std::string> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(draw(palette, rng).name);
  }
  EXPECT_EQ(seen.size(), palette.size());
}

TEST(Kernels, DrawFromEmptyPaletteIsContractViolation) {
  Rng rng(1);
  const std::vector<isa::KernelSpec> empty;
  EXPECT_THROW((void)draw(empty, rng), ContractViolation);
}

}  // namespace
}  // namespace repro::workload
