#include "workload/jobs.hpp"

#include <gtest/gtest.h>

#include <variant>

namespace repro::workload {
namespace {

TEST(Jobs, NumericJobAlternatesSerialAndLoops) {
  Rng rng(1);
  const os::Job job = make_numeric_job(1, rng, NumericJobParams{}, 0);
  EXPECT_EQ(job.cls, os::JobClass::kCluster);
  EXPECT_NO_THROW(job.program.validate());
  EXPECT_TRUE(job.program.has_concurrency());
  // First and last phases are serial (setup / teardown).
  EXPECT_TRUE(
      std::holds_alternative<isa::SerialPhase>(job.program.phases.front()));
  EXPECT_TRUE(
      std::holds_alternative<isa::SerialPhase>(job.program.phases.back()));
}

TEST(Jobs, NumericJobLoopCountRespectsParams) {
  NumericJobParams params;
  params.min_loops = 2;
  params.max_loops = 5;
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const os::Job job = make_numeric_job(static_cast<JobId>(i), rng,
                                         params, 0);
    std::size_t loops = 0;
    for (const isa::Phase& phase : job.program.phases) {
      loops += std::holds_alternative<isa::ConcurrentLoopPhase>(phase);
    }
    EXPECT_GE(loops, 2u);
    EXPECT_LE(loops, 5u);
  }
}

TEST(Jobs, SerialJobHasNoConcurrency) {
  Rng rng(3);
  const os::Job job = make_serial_job(7, rng, SerialJobParams{}, 100);
  EXPECT_EQ(job.cls, os::JobClass::kSerialDetached);
  EXPECT_FALSE(job.program.has_concurrency());
  EXPECT_EQ(job.submitted_at, 100u);
}

TEST(Jobs, DataBasesAreDisjointForNearbyJobs) {
  const Addr a = job_data_base(1);
  const Addr b = job_data_base(2);
  EXPECT_NE(a, b);
  EXPECT_GE(b > a ? b - a : a - b, 0x01000000u);
}

TEST(Jobs, DataBasesStayBelowIpRegions) {
  for (JobId id = 0; id < 1000; ++id) {
    EXPECT_LT(job_data_base(id) + 0x01000000ULL, 0xE0000000ULL);
  }
}

TEST(Jobs, NarrowLoopsGetScaledBodies) {
  NumericJobParams params;
  params.trip_law.weight_multiple_of_width = 0.0;
  params.trip_law.weight_two_leftover = 0.0;
  params.trip_law.weight_uniform = 0.0;
  params.trip_law.weight_narrow = 1.0;
  Rng rng(4);
  const os::Job job = make_numeric_job(1, rng, params, 0);
  const isa::KernelSpec wide_body = matmul_row_body(params.tuning);
  for (const isa::Phase& phase : job.program.phases) {
    if (const auto* loop = std::get_if<isa::ConcurrentLoopPhase>(&phase)) {
      EXPECT_LT(loop->trip_count, 8u);
      // Narrow iterations carry a whole batch's work.
      EXPECT_GE(loop->body.steps, wide_body.steps);
    }
  }
}

TEST(Jobs, SolverLoopsCarryMoreDependence) {
  NumericJobParams params;
  params.dependence_prob = 0.1;
  Rng rng(5);
  bool saw_solver = false;
  for (int i = 0; i < 100 && !saw_solver; ++i) {
    const os::Job job =
        make_numeric_job(static_cast<JobId>(i), rng, params, 0);
    for (const isa::Phase& phase : job.program.phases) {
      if (const auto* loop = std::get_if<isa::ConcurrentLoopPhase>(&phase)) {
        if (loop->body.name == "solver-sweep") {
          saw_solver = true;
          EXPECT_GT(loop->dependence_prob, params.dependence_prob);
        } else {
          EXPECT_DOUBLE_EQ(loop->dependence_prob, params.dependence_prob);
        }
      }
    }
  }
  EXPECT_TRUE(saw_solver);
}

}  // namespace
}  // namespace repro::workload
