#include "workload/trip_law.hpp"

#include <gtest/gtest.h>

#include "base/expect.hpp"

namespace repro::workload {
namespace {

TEST(TripLaw, DefaultIsValid) { EXPECT_NO_THROW(TripLaw{}.validate()); }

TEST(TripLaw, MultipleOfWidthMode) {
  TripLaw law;
  law.weight_multiple_of_width = 1.0;
  law.weight_two_leftover = 0.0;
  law.weight_uniform = 0.0;
  law.weight_narrow = 0.0;
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t trip = law.sample(rng);
    EXPECT_EQ(trip % 8, 0u);
    EXPECT_GE(trip, 8u * law.min_batches);
    EXPECT_LE(trip, 8u * law.max_batches);
  }
}

TEST(TripLaw, TwoLeftoverMode) {
  TripLaw law;
  law.weight_multiple_of_width = 0.0;
  law.weight_two_leftover = 1.0;
  law.weight_uniform = 0.0;
  law.weight_narrow = 0.0;
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(law.sample(rng) % 8, 2u);
  }
}

TEST(TripLaw, NarrowModeStaysBelowWidth) {
  TripLaw law;
  law.weight_multiple_of_width = 0.0;
  law.weight_two_leftover = 0.0;
  law.weight_uniform = 0.0;
  law.weight_narrow = 1.0;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t trip = law.sample(rng);
    EXPECT_GE(trip, 2u);
    EXPECT_LT(trip, 8u);
    EXPECT_TRUE(law.is_narrow(trip));
  }
}

TEST(TripLaw, UniformModeInRange) {
  TripLaw law;
  law.weight_multiple_of_width = 0.0;
  law.weight_two_leftover = 0.0;
  law.weight_uniform = 1.0;
  law.weight_narrow = 0.0;
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t trip = law.sample(rng);
    EXPECT_GE(trip, 8u * law.min_batches);
    EXPECT_LE(trip, 8u * law.max_batches + 7);
    EXPECT_FALSE(law.is_narrow(trip));
  }
}

TEST(TripLaw, MixedModesAllAppear) {
  TripLaw law;  // defaults include every mode
  Rng rng(5);
  bool saw_multiple = false;
  bool saw_leftover = false;
  bool saw_narrow = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t trip = law.sample(rng);
    saw_multiple |= trip >= 8 && trip % 8 == 0;
    saw_leftover |= trip >= 8 && trip % 8 == 2;
    saw_narrow |= trip < 8;
  }
  EXPECT_TRUE(saw_multiple);
  EXPECT_TRUE(saw_leftover);
  EXPECT_TRUE(saw_narrow);
}

TEST(TripLaw, RejectsDegenerateWeights) {
  TripLaw law;
  law.weight_multiple_of_width = 0.0;
  law.weight_two_leftover = 0.0;
  law.weight_uniform = 0.0;
  law.weight_narrow = 0.0;
  EXPECT_THROW(law.validate(), ContractViolation);

  TripLaw negative;
  negative.weight_uniform = -0.5;
  EXPECT_THROW(negative.validate(), ContractViolation);

  TripLaw bad_range;
  bad_range.min_batches = 10;
  bad_range.max_batches = 5;
  EXPECT_THROW(bad_range.validate(), ContractViolation);
}

TEST(TripLaw, WidthOneDegeneratesGracefully) {
  TripLaw law;
  law.width = 1;
  law.weight_multiple_of_width = 0.0;
  law.weight_two_leftover = 0.0;
  law.weight_uniform = 0.0;
  law.weight_narrow = 1.0;
  Rng rng(6);
  EXPECT_EQ(law.sample(rng), 1u);
}

}  // namespace
}  // namespace repro::workload
