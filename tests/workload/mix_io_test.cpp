#include "workload/mix_io.hpp"

#include <gtest/gtest.h>

#include "base/expect.hpp"
#include "workload/presets.hpp"

namespace repro::workload {
namespace {

TEST(MixIo, RoundTripsDefaults) {
  const WorkloadMix original;
  const WorkloadMix parsed = parse_mix(mix_to_text(original));
  EXPECT_EQ(parsed.name, original.name);
  EXPECT_DOUBLE_EQ(parsed.concurrent_job_fraction,
                   original.concurrent_job_fraction);
  EXPECT_DOUBLE_EQ(parsed.mean_idle_cycles, original.mean_idle_cycles);
  EXPECT_EQ(parsed.numeric.trip_law.max_batches,
            original.numeric.trip_law.max_batches);
  EXPECT_EQ(parsed.numeric.tuning.concurrent_working_set,
            original.numeric.tuning.concurrent_working_set);
}

TEST(MixIo, RoundTripsEveryPreset) {
  for (const WorkloadMix& mix : session_presets()) {
    const WorkloadMix parsed = parse_mix(mix_to_text(mix));
    EXPECT_EQ(parsed.name, mix.name);
    EXPECT_DOUBLE_EQ(parsed.concurrent_job_fraction,
                     mix.concurrent_job_fraction);
    EXPECT_DOUBLE_EQ(parsed.numeric.trip_law.weight_narrow,
                     mix.numeric.trip_law.weight_narrow);
    EXPECT_DOUBLE_EQ(parsed.numeric.dependence_prob,
                     mix.numeric.dependence_prob);
  }
  const WorkloadMix high = high_concurrency_mix();
  const WorkloadMix parsed = parse_mix(mix_to_text(high));
  EXPECT_EQ(parsed.numeric.tuning.concurrent_steps_scale,
            high.numeric.tuning.concurrent_steps_scale);
}

TEST(MixIo, RoundTripsContentionMixes) {
  for (const WorkloadMix& mix :
       {lock_contention_mix(LockType::kTicket),
        lock_contention_mix(LockType::kMcs), rcu_search_mix()}) {
    const WorkloadMix parsed = parse_mix(mix_to_text(mix));
    EXPECT_EQ(parsed.name, mix.name);
    EXPECT_DOUBLE_EQ(parsed.contention_job_fraction,
                     mix.contention_job_fraction);
    EXPECT_DOUBLE_EQ(parsed.contention.rcu_fraction,
                     mix.contention.rcu_fraction);
    EXPECT_EQ(parsed.contention.lock.lock, mix.contention.lock.lock);
    EXPECT_EQ(parsed.contention.lock.contenders,
              mix.contention.lock.contenders);
    EXPECT_EQ(parsed.contention.lock.critical_steps,
              mix.contention.lock.critical_steps);
    EXPECT_EQ(parsed.contention.lock.parallel_steps,
              mix.contention.lock.parallel_steps);
    EXPECT_EQ(parsed.contention.lock.ticket_handoff_steps,
              mix.contention.lock.ticket_handoff_steps);
    EXPECT_EQ(parsed.contention.rcu.readers, mix.contention.rcu.readers);
    EXPECT_EQ(parsed.contention.rcu.writer_every,
              mix.contention.rcu.writer_every);
  }
}

TEST(MixIo, UnknownLockTypeThrows) {
  EXPECT_THROW((void)parse_mix("contention.lock.type = spinlock\n"),
               ContractViolation);
}

TEST(MixIo, CommentsAndBlanksIgnored) {
  const WorkloadMix parsed = parse_mix(
      "# a comment\n"
      "\n"
      "name = commented-mix\n"
      "   # indented comment\n"
      "concurrent_job_fraction = 0.25\n");
  EXPECT_EQ(parsed.name, "commented-mix");
  EXPECT_DOUBLE_EQ(parsed.concurrent_job_fraction, 0.25);
}

TEST(MixIo, UnknownKeyThrows) {
  EXPECT_THROW((void)parse_mix("bogus_key = 1\n"), ContractViolation);
}

TEST(MixIo, MalformedLinesThrow) {
  EXPECT_THROW((void)parse_mix("concurrent_job_fraction 0.5\n"),
               ContractViolation);
  EXPECT_THROW((void)parse_mix("concurrent_job_fraction = \n"),
               ContractViolation);
  EXPECT_THROW((void)parse_mix("mean_idle_cycles = fast\n"),
               ContractViolation);
  EXPECT_THROW((void)parse_mix("trip.min_batches = -3\n"),
               ContractViolation);
}

TEST(MixIo, ParsedMixIsValidated) {
  // A fraction above 1 parses numerically but fails validation.
  EXPECT_THROW((void)parse_mix("concurrent_job_fraction = 1.5\n"),
               ContractViolation);
}

TEST(MixIo, ParsedMixDrivesAGenerator) {
  const WorkloadMix mix = parse_mix(mix_to_text(session_presets()[2]));
  os::System system{os::SystemConfig{}};
  WorkloadGenerator generator(mix, 99);
  for (Cycle c = 0; c < 30000; ++c) {
    generator.tick(system);
    system.tick();
  }
  EXPECT_GT(generator.jobs_generated(), 0u);
}

}  // namespace
}  // namespace repro::workload
