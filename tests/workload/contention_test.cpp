#include "workload/contention.hpp"

#include <gtest/gtest.h>

#include <variant>

#include "base/expect.hpp"
#include "base/rng.hpp"
#include "os/system.hpp"
#include "workload/generator.hpp"
#include "workload/presets.hpp"

namespace repro::workload {
namespace {

TEST(ContentionParams, ValidateRejectsBadInputs) {
  const auto rejects = [](auto&& mutate) {
    ContentionParams params;
    mutate(params);
    EXPECT_THROW(params.validate(), ContractViolation);
  };
  rejects([](auto& p) { p.rcu_fraction = -0.1; });
  rejects([](auto& p) { p.rcu_fraction = 1.5; });
  rejects([](auto& p) { p.lock.contenders = 0; });
  rejects([](auto& p) { p.lock.contenders = 9; });
  rejects([](auto& p) { p.lock.min_rounds = 0; });
  rejects([](auto& p) { p.lock.min_rounds = 5; p.lock.max_rounds = 4; });
  rejects([](auto& p) { p.lock.critical_steps = 0; });
  rejects([](auto& p) { p.lock.parallel_steps = 0; });
  rejects([](auto& p) { p.rcu.readers = 0; });
  rejects([](auto& p) { p.rcu.readers = 9; });
  rejects([](auto& p) { p.rcu.min_rounds = 3; p.rcu.max_rounds = 2; });
  rejects([](auto& p) { p.rcu.reader_steps = 0; });
  rejects([](auto& p) { p.rcu.writer_steps = 0; });
  rejects([](auto& p) { p.rcu.writer_every = 0; });
  ContentionParams good;
  EXPECT_NO_THROW(good.validate());
}

TEST(ContentionBodies, ArePredictorFriendly) {
  // The analytical model prices a step as compute + loads + stores; that
  // only holds if the bodies stay jitter-free and scalar.
  const LockJobParams lock;
  const RcuJobParams rcu;
  for (const isa::KernelSpec& body :
       {lock_parallel_body(lock), lock_critical_body(lock),
        rcu_reader_body(rcu), rcu_writer_body(rcu)}) {
    EXPECT_EQ(body.compute_jitter, 0u) << body.name;
    EXPECT_DOUBLE_EQ(body.vector_fraction, 0.0) << body.name;
  }
}

TEST(ContentionBodies, TicketReleasePaysTheHandoffSteps) {
  LockJobParams params;
  params.critical_steps = 12;
  params.ticket_handoff_steps = 2;
  params.lock = LockType::kTicket;
  const isa::KernelSpec ticket = lock_critical_body(params);
  params.lock = LockType::kMcs;
  const isa::KernelSpec mcs = lock_critical_body(params);
  EXPECT_EQ(mcs.steps, 12u);
  EXPECT_EQ(ticket.steps, 14u);
  // The parallel section is identical regardless of lock type.
  EXPECT_EQ(lock_parallel_body(params).steps, params.parallel_steps);
}

TEST(ContentionJobs, LockJobAlternatesParallelAndChainedCritical) {
  LockJobParams params;
  params.min_rounds = 3;
  params.max_rounds = 3;  // Pin the count.
  params.contenders = 6;
  Rng rng(0xBEEF);
  const os::Job job = make_lock_job(7, rng, params, 100);
  EXPECT_EQ(job.id, 7u);
  EXPECT_EQ(job.cls, os::JobClass::kCluster);
  EXPECT_EQ(job.submitted_at, 100u);
  EXPECT_EQ(job.program.name, "lock-ticket-7");
  ASSERT_EQ(job.program.phases.size(), 6u);  // 3 rounds x (parallel, crit).
  for (std::size_t i = 0; i < job.program.phases.size(); ++i) {
    const auto* loop =
        std::get_if<isa::ConcurrentLoopPhase>(&job.program.phases[i]);
    ASSERT_NE(loop, nullptr) << "phase " << i;
    EXPECT_EQ(loop->trip_count, 6u);
    if (i % 2 == 0) {
      // Parallel section: private data, no cross-iteration dependences.
      EXPECT_FALSE(loop->shared_data);
      EXPECT_DOUBLE_EQ(loop->dependence_prob, 0.0);
    } else {
      // Critical section: shared structure, fully FIFO-chained — the
      // CCB dependence release IS the lock handoff.
      EXPECT_TRUE(loop->shared_data);
      EXPECT_DOUBLE_EQ(loop->dependence_prob, 1.0);
    }
  }
}

TEST(ContentionJobs, McsJobNamesItsLockType) {
  LockJobParams params;
  params.lock = LockType::kMcs;
  Rng rng(1);
  EXPECT_EQ(make_lock_job(3, rng, params, 0).program.name, "lock-mcs-3");
}

TEST(ContentionJobs, RoundsDrawWithinBounds) {
  LockJobParams params;
  params.min_rounds = 2;
  params.max_rounds = 5;
  Rng rng(0x1234);
  for (JobId draw = 0; draw < 50; ++draw) {
    const os::Job job = make_lock_job(draw, rng, params, 0);
    const std::size_t rounds = job.program.phases.size() / 2;
    EXPECT_GE(rounds, 2u);
    EXPECT_LE(rounds, 5u);
    EXPECT_EQ(job.program.phases.size() % 2, 0u);
  }
}

TEST(ContentionJobs, RcuWriterRunsOnItsCadence) {
  RcuJobParams params;
  params.min_rounds = 4;
  params.max_rounds = 4;
  params.writer_every = 2;
  Rng rng(0xFEED);
  const os::Job job = make_rcu_job(11, rng, params, 0);
  EXPECT_EQ(job.program.name, "rcu-search-11");
  // 4 reader rounds with a serial writer after rounds 2 and 4:
  // L L W L L W.
  ASSERT_EQ(job.program.phases.size(), 6u);
  for (const std::size_t serial_at : {2u, 5u}) {
    EXPECT_TRUE(std::holds_alternative<isa::SerialPhase>(
        job.program.phases[serial_at]))
        << "phase " << serial_at;
  }
  const auto* lookup =
      std::get_if<isa::ConcurrentLoopPhase>(&job.program.phases[0]);
  ASSERT_NE(lookup, nullptr);
  // Readers share the structure but never block each other.
  EXPECT_TRUE(lookup->shared_data);
  EXPECT_DOUBLE_EQ(lookup->dependence_prob, 0.0);
}

TEST(ContentionPresets, MixesValidateAndDriveAGenerator) {
  for (const WorkloadMix& mix :
       {lock_contention_mix(LockType::kTicket),
        lock_contention_mix(LockType::kMcs), rcu_search_mix()}) {
    mix.validate();
    os::System system{os::SystemConfig{}};
    WorkloadGenerator generator(mix, 42);
    for (Cycle c = 0; c < 30000; ++c) {
      generator.tick(system);
      system.tick();
    }
    EXPECT_GT(generator.jobs_generated(), 0u) << mix.name;
    EXPECT_GT(system.scheduler().stats().jobs_completed, 0u) << mix.name;
  }
}

}  // namespace
}  // namespace repro::workload
