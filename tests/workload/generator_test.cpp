#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include "base/expect.hpp"
#include "workload/presets.hpp"

namespace repro::workload {
namespace {

TEST(WorkloadGenerator, FeedsAnIdleSystem) {
  os::System system{os::SystemConfig{}};
  WorkloadMix mix;
  mix.mean_idle_cycles = 0;  // always refill immediately
  WorkloadGenerator generator(mix, 11);
  for (Cycle c = 0; c < 50000; ++c) {
    generator.tick(system);
    system.tick();
  }
  EXPECT_GT(generator.jobs_generated(), 0u);
  EXPECT_GT(system.scheduler().stats().jobs_completed, 0u);
}

TEST(WorkloadGenerator, IdleGapsLeaveTheMachineIdle) {
  os::System system{os::SystemConfig{}};
  WorkloadMix mix;
  mix.mean_idle_cycles = 1e9;  // effectively never after the first burst
  WorkloadGenerator generator(mix, 11);
  Cycle idle_cycles = 0;
  for (Cycle c = 0; c < 200000; ++c) {
    generator.tick(system);
    system.tick();
    idle_cycles += system.scheduler().idle() ? 1u : 0u;
  }
  EXPECT_GT(idle_cycles, 100000u);
}

TEST(WorkloadGenerator, ConcurrentFractionZeroMakesOnlySerialJobs) {
  os::System system{os::SystemConfig{}};
  WorkloadMix mix;
  mix.concurrent_job_fraction = 0.0;
  mix.mean_idle_cycles = 0;
  WorkloadGenerator generator(mix, 13);
  for (Cycle c = 0; c < 100000; ++c) {
    generator.tick(system);
    system.tick();
  }
  EXPECT_GT(system.scheduler().stats().serial_jobs_completed, 0u);
  EXPECT_EQ(system.scheduler().stats().cluster_jobs_completed, 0u);
}

TEST(WorkloadGenerator, ConcurrentFractionOneMakesOnlyClusterJobs) {
  os::System system{os::SystemConfig{}};
  WorkloadMix mix;
  mix.concurrent_job_fraction = 1.0;
  mix.mean_idle_cycles = 0;
  WorkloadGenerator generator(mix, 13);
  for (Cycle c = 0; c < 100000; ++c) {
    generator.tick(system);
    system.tick();
  }
  EXPECT_GT(system.scheduler().stats().cluster_jobs_completed, 0u);
  EXPECT_EQ(system.scheduler().stats().serial_jobs_completed, 0u);
}

TEST(WorkloadGenerator, DeterministicForSeed) {
  auto run = [] {
    os::System system{os::SystemConfig{}};
    WorkloadGenerator generator(WorkloadMix{}, 99);
    for (Cycle c = 0; c < 100000; ++c) {
      generator.tick(system);
      system.tick();
    }
    return std::pair{generator.jobs_generated(),
                     system.scheduler().stats().jobs_completed};
  };
  EXPECT_EQ(run(), run());
}

TEST(WorkloadGenerator, RejectsBadMix) {
  WorkloadMix bad;
  bad.concurrent_job_fraction = 1.5;
  EXPECT_THROW((WorkloadGenerator{bad, 1}), ContractViolation);

  WorkloadMix burst;
  burst.mean_burst_jobs = 0.5;
  EXPECT_THROW((WorkloadGenerator{burst, 1}), ContractViolation);
}

TEST(Presets, NineSessionsAllValid) {
  const auto sessions = session_presets();
  ASSERT_EQ(sessions.size(), 9u);
  for (const WorkloadMix& mix : sessions) {
    EXPECT_NO_THROW(mix.validate()) << mix.name;
  }
}

TEST(Presets, SessionsSpanConcurrencyRange) {
  const auto sessions = session_presets();
  double lo = 1.0;
  double hi = 0.0;
  for (const WorkloadMix& mix : sessions) {
    lo = std::min(lo, mix.concurrent_job_fraction);
    hi = std::max(hi, mix.concurrent_job_fraction);
  }
  EXPECT_LT(lo, 0.3);
  EXPECT_GT(hi, 0.7);
}

TEST(Presets, SpecialMixesValidate) {
  EXPECT_NO_THROW(high_concurrency_mix().validate());
  EXPECT_NO_THROW(equal_locality_mix().validate());
  EXPECT_EQ(high_concurrency_mix().numeric.trip_law.weight_narrow, 0.0);
}

}  // namespace
}  // namespace repro::workload
