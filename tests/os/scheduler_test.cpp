#include "os/scheduler.hpp"

#include <gtest/gtest.h>

#include "os/system.hpp"
#include "workload/kernels.hpp"

namespace repro::os {
namespace {

isa::Program small_program(const char* name) {
  workload::KernelTuning tuning;
  return isa::ProgramBuilder(name)
      .data_base(0x01000000)
      .serial(workload::editor_body(tuning), 1)
      .build();
}

Job make_job(JobId id, JobClass cls) {
  Job job;
  job.id = id;
  job.cls = cls;
  job.program = small_program("job");
  return job;
}

TEST(Scheduler, StartsIdle) {
  System system{SystemConfig{}};
  EXPECT_TRUE(system.scheduler().idle());
  EXPECT_FALSE(system.scheduler().job_running());
}

TEST(Scheduler, RunsOneJobToCompletion) {
  System system{SystemConfig{}};
  system.scheduler().submit(make_job(1, JobClass::kSerialDetached));
  Cycle used = 0;
  while (!system.scheduler().idle()) {
    system.tick();
    ASSERT_LT(++used, 1'000'000u);
  }
  EXPECT_EQ(system.scheduler().stats().jobs_completed, 1u);
  EXPECT_EQ(system.scheduler().stats().serial_jobs_completed, 1u);
  EXPECT_EQ(system.counters().read(KernelCounter::kJobsCompleted), 1u);
}

TEST(Scheduler, FifoOrderAcrossJobs) {
  System system{SystemConfig{}};
  system.scheduler().submit(make_job(1, JobClass::kCluster));
  system.scheduler().submit(make_job(2, JobClass::kCluster));
  system.scheduler().submit(make_job(3, JobClass::kCluster));
  EXPECT_EQ(system.scheduler().queue_depth(), 3u);
  Cycle used = 0;
  while (!system.scheduler().idle()) {
    system.tick();
    ASSERT_LT(++used, 1'000'000u);
  }
  EXPECT_EQ(system.scheduler().stats().jobs_completed, 3u);
  EXPECT_EQ(system.counters().read(KernelCounter::kContextSwitches), 3u);
}

TEST(Scheduler, ReleasesJobPagesOnCompletion) {
  System system{SystemConfig{}};
  system.scheduler().submit(make_job(42, JobClass::kSerialDetached));
  Cycle used = 0;
  while (!system.scheduler().idle()) {
    system.tick();
    ASSERT_LT(++used, 1'000'000u);
  }
  EXPECT_EQ(system.vm().resident_pages(42), 0u);
}

TEST(Scheduler, CountsSubmissions) {
  System system{SystemConfig{}};
  system.scheduler().submit(make_job(1, JobClass::kCluster));
  system.scheduler().submit(make_job(2, JobClass::kSerialDetached));
  EXPECT_EQ(system.counters().read(KernelCounter::kJobsSubmitted), 2u);
}

}  // namespace
}  // namespace repro::os
