#include <gtest/gtest.h>

#include "os/system.hpp"
#include "workload/kernels.hpp"

namespace repro::os {
namespace {

isa::Program serial_program() {
  workload::KernelTuning tuning;
  return isa::ProgramBuilder("serial")
      .data_base(0x01000000)
      .serial(workload::editor_body(tuning), 1)
      .build();
}

isa::Program cluster_program() {
  workload::KernelTuning tuning;
  isa::ConcurrentLoopPhase loop;
  loop.body = workload::triad_body(tuning);
  loop.trip_count = 16;
  return isa::ProgramBuilder("cluster")
      .data_base(0x02000000)
      .concurrent_loop(loop)
      .build();
}

Job make_job(JobId id, JobClass cls) {
  Job job;
  job.id = id;
  job.cls = cls;
  job.program = cls == JobClass::kCluster ? cluster_program()
                                          : serial_program();
  return job;
}

TEST(SchedulerPolicy, ConcurrentFirstRunsClusterJobsFirst) {
  SystemConfig config;
  config.scheduling = SchedulingPolicy::kConcurrentFirst;
  System system{config};
  system.scheduler().submit(make_job(1, JobClass::kSerialDetached));
  system.scheduler().submit(make_job(2, JobClass::kCluster));
  // Nothing has started; first tick should pick the cluster job.
  system.tick();
  EXPECT_TRUE(system.scheduler().job_running());
  // Drain; the serial job must still complete.
  Cycle used = 0;
  while (!system.scheduler().idle()) {
    system.tick();
    ASSERT_LT(++used, 2'000'000u);
  }
  EXPECT_EQ(system.scheduler().stats().cluster_jobs_completed, 1u);
  EXPECT_EQ(system.scheduler().stats().serial_jobs_completed, 1u);
}

TEST(SchedulerPolicy, SerialFirstPrefersDetachedJobs) {
  SystemConfig config;
  config.scheduling = SchedulingPolicy::kSerialFirst;
  System system{config};
  system.scheduler().submit(make_job(1, JobClass::kCluster));
  system.scheduler().submit(make_job(2, JobClass::kSerialDetached));
  system.tick();
  // The serial job jumped the queue: the cluster runs 1-active.
  EXPECT_LE(system.machine().cluster().active_count(), 1u);
  Cycle used = 0;
  while (!system.scheduler().idle()) {
    system.tick();
    ASSERT_LT(++used, 2'000'000u);
  }
  EXPECT_EQ(system.scheduler().stats().jobs_completed, 2u);
}

TEST(SchedulerPolicy, FifoPreservesSubmissionOrder) {
  SystemConfig config;
  config.scheduling = SchedulingPolicy::kFifo;
  System system{config};
  for (JobId id = 1; id <= 4; ++id) {
    system.scheduler().submit(
        make_job(id, id % 2 ? JobClass::kSerialDetached
                            : JobClass::kCluster));
  }
  Cycle used = 0;
  while (!system.scheduler().idle()) {
    system.tick();
    ASSERT_LT(++used, 2'000'000u);
  }
  EXPECT_EQ(system.scheduler().stats().jobs_completed, 4u);
}

TEST(SchedulerPolicy, WaitCyclesAccumulate) {
  System system{SystemConfig{}};
  system.scheduler().submit(make_job(1, JobClass::kCluster));
  system.scheduler().submit(make_job(2, JobClass::kCluster));
  Cycle used = 0;
  while (!system.scheduler().idle()) {
    system.tick();
    ASSERT_LT(++used, 2'000'000u);
  }
  // Job 2 waited for job 1.
  EXPECT_GT(system.scheduler().stats().total_wait_cycles, 0u);
}

TEST(SchedulerPolicy, PolicyIsReported) {
  SystemConfig config;
  config.scheduling = SchedulingPolicy::kConcurrentFirst;
  System system{config};
  EXPECT_EQ(system.scheduler().policy(),
            SchedulingPolicy::kConcurrentFirst);
}

}  // namespace
}  // namespace repro::os
