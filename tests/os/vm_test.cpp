#include "os/vm.hpp"

#include <gtest/gtest.h>

#include "base/expect.hpp"

namespace repro::os {
namespace {

class VmTest : public ::testing::Test {
 protected:
  VmTest() : vm_(VmConfig{}, counters_) {}

  KernelCounters counters_;
  VirtualMemory vm_;
};

TEST_F(VmTest, FirstTouchFaultsSecondDoesNot) {
  EXPECT_GT(vm_.touch(1, 0, 0x1000), 0u);
  EXPECT_EQ(vm_.touch(1, 0, 0x1000), 0u);
  EXPECT_EQ(vm_.touch(1, 0, 0x1FFF), 0u);  // same page
  EXPECT_GT(vm_.touch(1, 0, 0x2000), 0u);  // next page
}

TEST_F(VmTest, FaultServiceTimeMatchesConfig) {
  VmConfig config;
  config.fault_service_cycles = 321;
  VirtualMemory vm(config, counters_);
  EXPECT_EQ(vm.touch(1, 0, 0x0), 321u);
}

TEST_F(VmTest, JobsHaveSeparateAddressSpaces) {
  (void)vm_.touch(1, 0, 0x1000);
  EXPECT_GT(vm_.touch(2, 0, 0x1000), 0u);  // job 2 faults independently
}

TEST_F(VmTest, CountersTrackUserAndSystemFaults) {
  for (Addr page = 0; page < 200; ++page) {
    (void)vm_.touch(1, 0, page * kPageBytes);
  }
  const std::uint64_t user =
      counters_.read(KernelCounter::kCePageFaultsUser);
  const std::uint64_t system =
      counters_.read(KernelCounter::kCePageFaultsSystem);
  EXPECT_EQ(user + system, 200u);
  EXPECT_GT(user, system);  // system fraction is 0.2
  EXPECT_GT(system, 0u);
  EXPECT_EQ(counters_.ce_page_faults(), 200u);
}

TEST_F(VmTest, ReleaseJobDropsResidentSet) {
  (void)vm_.touch(1, 0, 0x1000);
  EXPECT_EQ(vm_.resident_pages(1), 1u);
  vm_.release_job(1);
  EXPECT_EQ(vm_.resident_pages(1), 0u);
  EXPECT_GT(vm_.touch(1, 0, 0x1000), 0u);  // re-faults after release
}

TEST_F(VmTest, ResidentLimitEvictsFifo) {
  VmConfig config;
  config.resident_limit_pages = 4;
  VirtualMemory vm(config, counters_);
  for (Addr page = 0; page < 6; ++page) {
    (void)vm.touch(1, 0, page * kPageBytes);
  }
  EXPECT_EQ(vm.resident_pages(1), 4u);
  EXPECT_EQ(vm.stats().evictions, 2u);
  // Page 0 was evicted; touching it faults again.
  EXPECT_GT(vm.touch(1, 0, 0), 0u);
  // Page 5 is still resident.
  EXPECT_EQ(vm.touch(1, 0, 5 * kPageBytes), 0u);
}

TEST_F(VmTest, AddressBeyondSegmentedSpaceIsContractViolation) {
  const Addr beyond = 1024ULL * 1024 * kPageBytes;
  EXPECT_THROW((void)vm_.touch(1, 0, beyond), ContractViolation);
}

TEST_F(VmTest, RejectsBadConfig) {
  VmConfig config;
  config.system_fault_fraction = 2.0;
  EXPECT_THROW((VirtualMemory{config, counters_}), ContractViolation);
}

TEST_F(VmTest, FaultClassificationIsDeterministic) {
  KernelCounters counters_a;
  KernelCounters counters_b;
  VirtualMemory vm_a(VmConfig{}, counters_a);
  VirtualMemory vm_b(VmConfig{}, counters_b);
  for (Addr page = 0; page < 100; ++page) {
    (void)vm_a.touch(7, 2, page * kPageBytes);
    (void)vm_b.touch(7, 2, page * kPageBytes);
  }
  EXPECT_EQ(counters_a.read(KernelCounter::kCePageFaultsSystem),
            counters_b.read(KernelCounter::kCePageFaultsSystem));
}

TEST_F(VmTest, PhysicalExhaustionReclaimsGlobally) {
  VmConfig config;
  config.physical_bytes = 4 * kPageBytes;  // four frames total
  config.resident_limit_pages = 0;         // no per-job cap
  VirtualMemory vm(config, counters_);
  // Two jobs map two pages each: pool full.
  (void)vm.touch(1, 0, 0 * kPageBytes);
  (void)vm.touch(1, 0, 1 * kPageBytes);
  (void)vm.touch(2, 0, 0 * kPageBytes);
  (void)vm.touch(2, 0, 1 * kPageBytes);
  EXPECT_EQ(vm.frames().free_frames(), 0u);
  // A fifth page forces a global reclaim of the oldest mapping (job 1,
  // page 0), which then re-faults.
  EXPECT_GT(vm.touch(2, 0, 2 * kPageBytes), 0u);
  EXPECT_EQ(vm.stats().global_reclaims, 1u);
  EXPECT_EQ(vm.resident_pages(1), 1u);
  EXPECT_GT(vm.touch(1, 0, 0 * kPageBytes), 0u);  // re-fault
}

TEST_F(VmTest, ReleaseReturnsFramesToThePool) {
  VmConfig config;
  config.physical_bytes = 2 * kPageBytes;
  VirtualMemory vm(config, counters_);
  (void)vm.touch(1, 0, 0);
  (void)vm.touch(1, 0, kPageBytes);
  EXPECT_EQ(vm.frames().free_frames(), 0u);
  vm.release_job(1);
  EXPECT_EQ(vm.frames().free_frames(), 2u);
}

TEST_F(VmTest, FramesNeverLeakUnderChurn) {
  VmConfig config;
  config.physical_bytes = 64 * kPageBytes;
  config.resident_limit_pages = 8;
  VirtualMemory vm(config, counters_);
  for (JobId job = 1; job <= 5; ++job) {
    for (Addr page = 0; page < 40; ++page) {
      (void)vm.touch(job, 0, page * kPageBytes);
    }
  }
  // Per-job caps kept residency at 8 pages/job.
  std::uint64_t resident = 0;
  for (JobId job = 1; job <= 5; ++job) {
    resident += vm.resident_pages(job);
  }
  EXPECT_EQ(resident, 40u);
  EXPECT_EQ(vm.frames().used_frames(), resident);
  for (JobId job = 1; job <= 5; ++job) {
    vm.release_job(job);
  }
  EXPECT_EQ(vm.frames().used_frames(), 0u);
}

}  // namespace
}  // namespace repro::os
