#include "os/kernel_counters.hpp"

#include <gtest/gtest.h>

namespace repro::os {
namespace {

TEST(KernelCounters, StartAtZero) {
  KernelCounters counters;
  for (std::size_t i = 0; i < kNumKernelCounters; ++i) {
    EXPECT_EQ(counters.read(static_cast<KernelCounter>(i)), 0u);
  }
}

TEST(KernelCounters, IncrementAccumulates) {
  KernelCounters counters;
  counters.increment(KernelCounter::kJobsCompleted);
  counters.increment(KernelCounter::kJobsCompleted, 4);
  EXPECT_EQ(counters.read(KernelCounter::kJobsCompleted), 5u);
}

TEST(KernelCounters, CePageFaultsSumsUserAndSystem) {
  KernelCounters counters;
  counters.increment(KernelCounter::kCePageFaultsUser, 10);
  counters.increment(KernelCounter::kCePageFaultsSystem, 3);
  EXPECT_EQ(counters.ce_page_faults(), 13u);
}

TEST(KernelCounters, SnapshotIsConsistent) {
  KernelCounters counters;
  counters.increment(KernelCounter::kContextSwitches, 7);
  const auto snap = counters.snapshot();
  EXPECT_EQ(snap[static_cast<std::size_t>(KernelCounter::kContextSwitches)],
            7u);
}

TEST(KernelCounters, NamesAreDistinct) {
  EXPECT_NE(name(KernelCounter::kCePageFaultsUser),
            name(KernelCounter::kCePageFaultsSystem));
  EXPECT_EQ(name(KernelCounter::kJobsCompleted), "jobs-completed");
}

}  // namespace
}  // namespace repro::os
