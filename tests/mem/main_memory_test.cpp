#include "mem/main_memory.hpp"

#include <gtest/gtest.h>

#include "base/expect.hpp"

namespace repro::mem {
namespace {

TEST(MainMemory, BankInterleavesByLine) {
  MainMemory memory(MainMemoryConfig{});
  EXPECT_EQ(memory.bank_of(0), 0u);
  EXPECT_EQ(memory.bank_of(kLineBytes), 1u);
  EXPECT_EQ(memory.bank_of(2 * kLineBytes), 2u);
  EXPECT_EQ(memory.bank_of(3 * kLineBytes), 3u);
  EXPECT_EQ(memory.bank_of(4 * kLineBytes), 0u);
  // Same line, same bank regardless of offset within the line.
  EXPECT_EQ(memory.bank_of(kLineBytes + 17), 1u);
}

TEST(MainMemory, IdleBankStartsImmediately) {
  MainMemory memory(MainMemoryConfig{});
  EXPECT_EQ(memory.earliest_start(0, 100), 100u);
}

TEST(MainMemory, BusyBankDelaysNextAccess) {
  MainMemoryConfig config;
  config.bank_busy_cycles = 4;
  MainMemory memory(config);
  const Cycle done = memory.begin_access(0, 10);
  EXPECT_EQ(done, 14u);
  EXPECT_EQ(memory.earliest_start(0, 11), 14u);
  // A different bank is unaffected.
  EXPECT_EQ(memory.earliest_start(kLineBytes, 11), 11u);
}

TEST(MainMemory, AccessesToDistinctBanksOverlap) {
  MainMemory memory(MainMemoryConfig{});
  (void)memory.begin_access(0 * kLineBytes, 0);
  (void)memory.begin_access(1 * kLineBytes, 0);
  (void)memory.begin_access(2 * kLineBytes, 0);
  (void)memory.begin_access(3 * kLineBytes, 0);
  EXPECT_EQ(memory.access_count(), 4u);
}

TEST(MainMemory, SchedulingIntoBusyBankIsContractViolation) {
  MainMemory memory(MainMemoryConfig{});
  (void)memory.begin_access(0, 0);
  EXPECT_THROW((void)memory.begin_access(0, 1), ContractViolation);
}

TEST(MainMemory, RejectsBadConfig) {
  MainMemoryConfig zero_interleave;
  zero_interleave.interleave = 0;
  EXPECT_THROW(MainMemory{zero_interleave}, ContractViolation);

  MainMemoryConfig zero_busy;
  zero_busy.bank_busy_cycles = 0;
  EXPECT_THROW(MainMemory{zero_busy}, ContractViolation);
}

}  // namespace
}  // namespace repro::mem
