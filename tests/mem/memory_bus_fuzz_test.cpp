// Property tests: memory-bus conservation.
//
// Every submitted transaction completes exactly once, regardless of the
// submission pattern, and bus-cycle accounting always sums to elapsed
// time.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "base/rng.hpp"
#include "mem/main_memory.hpp"
#include "mem/memory_bus.hpp"

namespace repro::mem {
namespace {

class MemoryBusFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MemoryBusFuzz, EveryTransactionCompletesExactlyOnce) {
  Rng rng(GetParam());
  MainMemory memory{MainMemoryConfig{}};
  MemoryBus bus{MemoryBusConfig{}, memory};

  std::set<TxnId> outstanding;
  std::uint64_t completed = 0;
  Cycle now = 0;
  constexpr int kSubmissions = 400;

  for (int i = 0; i < kSubmissions; ++i) {
    const auto bus_idx = static_cast<std::uint32_t>(rng.uniform(2));
    const MemBusOp op = rng.bernoulli(0.2)
                            ? MemBusOp::kInvalidate
                            : (rng.bernoulli(0.5) ? MemBusOp::kLineFetch
                                                  : MemBusOp::kWriteBack);
    const Addr addr = rng.uniform(1024) * kLineBytes;
    outstanding.insert(bus.submit(bus_idx, op, addr));

    // Random number of ticks between submissions.
    const int ticks = static_cast<int>(rng.uniform(4));
    for (int t = 0; t < ticks; ++t) {
      bus.tick(now++);
      for (auto it = outstanding.begin(); it != outstanding.end();) {
        if (bus.take_finished(*it)) {
          it = outstanding.erase(it);
          ++completed;
        } else {
          ++it;
        }
      }
    }
  }
  // Drain.
  Cycle guard = now + 100000;
  while (!outstanding.empty()) {
    bus.tick(now++);
    ASSERT_LT(now, guard) << "transactions never drained";
    for (auto it = outstanding.begin(); it != outstanding.end();) {
      if (bus.take_finished(*it)) {
        it = outstanding.erase(it);
        ++completed;
      } else {
        ++it;
      }
    }
  }
  EXPECT_EQ(completed, static_cast<std::uint64_t>(kSubmissions));

  // A consumed completion never re-fires.
  EXPECT_FALSE(bus.take_finished(1));

  // Cycle accounting: per-bus opcode counts sum to elapsed cycles.
  for (std::uint32_t b = 0; b < 2; ++b) {
    std::uint64_t total = 0;
    for (std::size_t op = 0; op < kNumMemBusOps; ++op) {
      total += bus.op_cycles(b, static_cast<MemBusOp>(op));
    }
    EXPECT_EQ(total, now);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoryBusFuzz,
                         ::testing::Values(3, 33, 333, 0x1987));

}  // namespace
}  // namespace repro::mem
