#include "mem/frame_allocator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "base/expect.hpp"

namespace repro::mem {
namespace {

TEST(FrameAllocator, PoolSizeFromCapacity) {
  FrameAllocator pool(16 * kPageBytes);
  EXPECT_EQ(pool.total_frames(), 16u);
  EXPECT_EQ(pool.free_frames(), 16u);
  EXPECT_EQ(pool.used_frames(), 0u);
}

TEST(FrameAllocator, AllocatesDistinctFrames) {
  FrameAllocator pool(8 * kPageBytes);
  std::set<FrameId> frames;
  for (int i = 0; i < 8; ++i) {
    const auto frame = pool.allocate();
    ASSERT_TRUE(frame.has_value());
    EXPECT_TRUE(frames.insert(*frame).second) << "duplicate frame";
  }
  EXPECT_EQ(pool.free_frames(), 0u);
}

TEST(FrameAllocator, ExhaustionReturnsNullopt) {
  FrameAllocator pool(2 * kPageBytes);
  (void)pool.allocate();
  (void)pool.allocate();
  EXPECT_FALSE(pool.allocate().has_value());
  EXPECT_EQ(pool.stats().exhaustions, 1u);
}

TEST(FrameAllocator, FreeMakesFrameReusable) {
  FrameAllocator pool(2 * kPageBytes);
  const auto a = pool.allocate();
  const auto b = pool.allocate();
  ASSERT_TRUE(a && b);
  pool.free(*a);
  EXPECT_EQ(pool.free_frames(), 1u);
  const auto c = pool.allocate();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, *a);
}

TEST(FrameAllocator, DoubleFreeIsContractViolation) {
  FrameAllocator pool(2 * kPageBytes);
  const auto frame = pool.allocate();
  pool.free(*frame);
  EXPECT_THROW(pool.free(*frame), ContractViolation);
  EXPECT_THROW(pool.free(99), ContractViolation);
}

TEST(FrameAllocator, IsAllocatedTracksState) {
  FrameAllocator pool(4 * kPageBytes);
  const auto frame = pool.allocate();
  EXPECT_TRUE(pool.is_allocated(*frame));
  pool.free(*frame);
  EXPECT_FALSE(pool.is_allocated(*frame));
}

TEST(FrameAllocator, ChurnKeepsAccountingConsistent) {
  FrameAllocator pool(8 * kPageBytes);
  std::set<FrameId> live;
  for (int round = 0; round < 1000; ++round) {
    if (round % 3 != 0 || live.empty()) {
      if (const auto frame = pool.allocate()) {
        live.insert(*frame);
      }
    } else {
      const FrameId victim = *live.begin();
      pool.free(victim);
      live.erase(victim);
    }
    EXPECT_EQ(pool.used_frames(), live.size());
  }
}

TEST(FrameAllocator, RejectsEmptyPool) {
  EXPECT_THROW(FrameAllocator{0}, ContractViolation);
}

}  // namespace
}  // namespace repro::mem
