#include "mem/memory_bus.hpp"

#include <gtest/gtest.h>

#include "base/expect.hpp"
#include "mem/main_memory.hpp"

namespace repro::mem {
namespace {

MemoryBusConfig four_cycle_config() {
  MemoryBusConfig config;
  config.transfer_cycles = 4;  // Pinned: tests below count exact cycles.
  return config;
}

class MemoryBusTest : public ::testing::Test {
 protected:
  MemoryBusTest()
      : memory_(MainMemoryConfig{}), bus_(four_cycle_config(), memory_) {}

  void run_cycles(int n) {
    for (int i = 0; i < n; ++i) {
      bus_.tick(now_++);
    }
  }

  MainMemory memory_;
  MemoryBus bus_;
  Cycle now_ = 0;
};

TEST_F(MemoryBusTest, IdleWhenNothingSubmitted) {
  run_cycles(3);
  EXPECT_EQ(bus_.op_on(0), MemBusOp::kIdle);
  EXPECT_EQ(bus_.op_on(1), MemBusOp::kIdle);
  EXPECT_EQ(bus_.op_cycles(0, MemBusOp::kIdle), 3u);
}

TEST_F(MemoryBusTest, LineFetchOccupiesTransferCycles) {
  const TxnId id = bus_.submit(0, MemBusOp::kLineFetch, 0x100);
  run_cycles(1);
  EXPECT_EQ(bus_.op_on(0), MemBusOp::kLineFetch);
  EXPECT_FALSE(bus_.take_finished(id));
  run_cycles(3);  // transfer_cycles == 4 total
  EXPECT_TRUE(bus_.take_finished(id));
  // A consumed completion is gone.
  EXPECT_FALSE(bus_.take_finished(id));
  run_cycles(1);
  EXPECT_EQ(bus_.op_on(0), MemBusOp::kIdle);
}

TEST_F(MemoryBusTest, SecondBusIndependent) {
  (void)bus_.submit(0, MemBusOp::kLineFetch, 0x100);
  run_cycles(1);
  EXPECT_EQ(bus_.op_on(0), MemBusOp::kLineFetch);
  EXPECT_EQ(bus_.op_on(1), MemBusOp::kIdle);
}

TEST_F(MemoryBusTest, QueuedTransactionsServeInOrder) {
  const TxnId a = bus_.submit(0, MemBusOp::kLineFetch, 0 * kLineBytes);
  const TxnId b = bus_.submit(0, MemBusOp::kWriteBack, 1 * kLineBytes);
  EXPECT_EQ(bus_.queue_depth(0), 2u);
  run_cycles(4);
  EXPECT_TRUE(bus_.take_finished(a));
  EXPECT_FALSE(bus_.take_finished(b));
  run_cycles(4);
  EXPECT_TRUE(bus_.take_finished(b));
}

TEST_F(MemoryBusTest, InvalidateIsShort) {
  const TxnId id = bus_.submit(1, MemBusOp::kInvalidate, 0);
  run_cycles(1);
  EXPECT_TRUE(bus_.take_finished(id));
  EXPECT_EQ(bus_.op_cycles(1, MemBusOp::kInvalidate), 1u);
}

TEST_F(MemoryBusTest, BankConflictStallsBus) {
  // Two fetches to the same bank back to back: the second waits for the
  // bank to free even though the bus is idle.
  MainMemoryConfig mc;
  mc.bank_busy_cycles = 10;  // Longer than the bus transfer.
  MainMemory slow_memory(mc);
  MemoryBus bus(four_cycle_config(), slow_memory);
  const TxnId a = bus.submit(0, MemBusOp::kLineFetch, 0);
  const TxnId b = bus.submit(0, MemBusOp::kLineFetch, 4 * kLineBytes);
  Cycle now = 0;
  for (int i = 0; i < 4; ++i) {
    bus.tick(now++);
  }
  EXPECT_TRUE(bus.take_finished(a));
  // Bank is busy until cycle 10; bus idles in between.
  int idle_cycles = 0;
  while (!bus.take_finished(b)) {
    bus.tick(now++);
    idle_cycles += bus.op_on(0) == MemBusOp::kIdle ? 1 : 0;
    ASSERT_LT(now, 100u);
  }
  EXPECT_GT(idle_cycles, 0);
}

TEST_F(MemoryBusTest, RejectsBadSubmissions) {
  EXPECT_THROW((void)bus_.submit(9, MemBusOp::kLineFetch, 0),
               ContractViolation);
  EXPECT_THROW((void)bus_.submit(0, MemBusOp::kIdle, 0), ContractViolation);
}

TEST_F(MemoryBusTest, OpCycleCountsAccumulate) {
  (void)bus_.submit(0, MemBusOp::kLineFetch, 0);
  run_cycles(6);
  EXPECT_EQ(bus_.op_cycles(0, MemBusOp::kLineFetch), 4u);
  EXPECT_EQ(bus_.op_cycles(0, MemBusOp::kIdle), 2u);
}

}  // namespace
}  // namespace repro::mem
