#include "mem/bus_ops.hpp"

#include <gtest/gtest.h>

namespace repro::mem {
namespace {

TEST(BusOps, MissClassification) {
  EXPECT_TRUE(is_miss(CeBusOp::kReadMiss));
  EXPECT_TRUE(is_miss(CeBusOp::kWriteMiss));
  EXPECT_FALSE(is_miss(CeBusOp::kRead));
  EXPECT_FALSE(is_miss(CeBusOp::kWrite));
  EXPECT_FALSE(is_miss(CeBusOp::kIdle));
  EXPECT_FALSE(is_miss(CeBusOp::kWait));
  EXPECT_FALSE(is_miss(CeBusOp::kInstrFetch));
}

TEST(BusOps, BusyClassification) {
  EXPECT_FALSE(is_busy(CeBusOp::kIdle));
  EXPECT_TRUE(is_busy(CeBusOp::kRead));
  EXPECT_TRUE(is_busy(CeBusOp::kWrite));
  EXPECT_TRUE(is_busy(CeBusOp::kReadMiss));
  EXPECT_TRUE(is_busy(CeBusOp::kWriteMiss));
  EXPECT_TRUE(is_busy(CeBusOp::kWait));
  EXPECT_TRUE(is_busy(CeBusOp::kInstrFetch));
}

TEST(BusOps, NamesAreDistinct) {
  EXPECT_EQ(name(CeBusOp::kIdle), "idle");
  EXPECT_EQ(name(CeBusOp::kReadMiss), "read-miss");
  EXPECT_EQ(name(MemBusOp::kLineFetch), "line-fetch");
  EXPECT_EQ(name(MemBusOp::kIpTraffic), "ip-traffic");
  EXPECT_NE(name(CeBusOp::kRead), name(CeBusOp::kWrite));
}

}  // namespace
}  // namespace repro::mem
