#include "isa/kernel.hpp"

#include <gtest/gtest.h>

#include "base/expect.hpp"

namespace repro::isa {
namespace {

KernelSpec valid_kernel() {
  KernelSpec k;
  k.name = "t";
  k.steps = 4;
  k.compute_cycles = 3;
  k.loads_per_step = 2;
  k.stores_per_step = 1;
  return k;
}

TEST(KernelSpec, DefaultIsValid) {
  EXPECT_NO_THROW(KernelSpec{}.validate());
}

TEST(KernelSpec, ValidSpecPasses) {
  EXPECT_NO_THROW(valid_kernel().validate());
}

TEST(KernelSpec, RejectsZeroSteps) {
  KernelSpec k = valid_kernel();
  k.steps = 0;
  EXPECT_THROW(k.validate(), ContractViolation);
}

TEST(KernelSpec, RejectsNoWork) {
  KernelSpec k = valid_kernel();
  k.compute_cycles = 0;
  k.loads_per_step = 0;
  k.stores_per_step = 0;
  EXPECT_THROW(k.validate(), ContractViolation);
}

TEST(KernelSpec, RejectsJitterLargerThanMean) {
  KernelSpec k = valid_kernel();
  k.compute_jitter = k.compute_cycles + 1;
  EXPECT_THROW(k.validate(), ContractViolation);
}

TEST(KernelSpec, RejectsZeroStride) {
  KernelSpec k = valid_kernel();
  k.stride_bytes = 0;
  EXPECT_THROW(k.validate(), ContractViolation);
}

TEST(KernelSpec, RejectsWorkingSetSmallerThanStride) {
  KernelSpec k = valid_kernel();
  k.stride_bytes = 128;
  k.working_set_bytes = 64;
  EXPECT_THROW(k.validate(), ContractViolation);
}

TEST(KernelSpec, RejectsBadProbabilities) {
  KernelSpec hot = valid_kernel();
  hot.hot_fraction = 1.5;
  EXPECT_THROW(hot.validate(), ContractViolation);

  KernelSpec vec = valid_kernel();
  vec.vector_fraction = -0.1;
  EXPECT_THROW(vec.validate(), ContractViolation);
}

TEST(KernelSpec, DescribeMentionsNameAndShape) {
  const KernelSpec k = valid_kernel();
  const std::string d = describe(k);
  EXPECT_NE(d.find("t:"), std::string::npos);
  EXPECT_NE(d.find("streaming"), std::string::npos);
}

}  // namespace
}  // namespace repro::isa
