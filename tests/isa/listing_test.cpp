#include "isa/listing.hpp"

#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "workload/jobs.hpp"

namespace repro::isa {
namespace {

TEST(Listing, ShowsPhaseStructure) {
  KernelSpec body;
  body.name = "inner";
  body.steps = 4;
  body.compute_cycles = 2;
  body.loads_per_step = 1;
  ConcurrentLoopPhase loop;
  loop.body = body;
  loop.trip_count = 66;
  loop.dependence_prob = 0.1;
  loop.long_path_prob = 0.2;
  loop.long_path_extra_steps = 5;

  const Program program = ProgramBuilder("demo")
                              .data_base(0x1000)
                              .serial(body, 3)
                              .concurrent_loop(loop)
                              .build();
  const std::string text = listing(program);
  EXPECT_NE(text.find("program demo"), std::string::npos);
  EXPECT_NE(text.find("serial"), std::string::npos);
  EXPECT_NE(text.find("CONCURRENT"), std::string::npos);
  EXPECT_NE(text.find("x  66"), std::string::npos);
  EXPECT_NE(text.find("[dep 0.10]"), std::string::npos);
  EXPECT_NE(text.find("[branchy 0.20 +5 steps]"), std::string::npos);
  EXPECT_NE(text.find("total concurrent iterations: 66"),
            std::string::npos);
}

TEST(Listing, HandlesGeneratedJobs) {
  Rng rng(3);
  const os::Job job =
      workload::make_numeric_job(1, rng, workload::NumericJobParams{}, 0);
  const std::string text = listing(job.program);
  EXPECT_NE(text.find("CONCURRENT"), std::string::npos);
  // One listing line per phase plus header and footer.
  std::size_t lines = 0;
  for (const char c : text) {
    lines += c == '\n';
  }
  EXPECT_EQ(lines, job.program.phases.size() + 2);
}

TEST(Listing, MarksPrivateDataLoops) {
  KernelSpec body;
  body.steps = 2;
  body.compute_cycles = 2;
  body.loads_per_step = 1;
  ConcurrentLoopPhase loop;
  loop.body = body;
  loop.trip_count = 8;
  loop.shared_data = false;
  const Program program =
      ProgramBuilder("p").concurrent_loop(loop).build();
  EXPECT_NE(listing(program).find("[private data]"), std::string::npos);
}

}  // namespace
}  // namespace repro::isa
