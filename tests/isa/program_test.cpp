#include "isa/program.hpp"

#include <gtest/gtest.h>

#include "base/expect.hpp"

namespace repro::isa {
namespace {

KernelSpec small_kernel() {
  KernelSpec k;
  k.steps = 2;
  k.compute_cycles = 2;
  k.loads_per_step = 1;
  return k;
}

TEST(Program, EmptyProgramInvalid) {
  Program p;
  EXPECT_THROW(p.validate(), ContractViolation);
}

TEST(Program, BuilderBuildsSerialAndLoop) {
  ConcurrentLoopPhase loop;
  loop.trip_count = 16;
  loop.body = small_kernel();

  const Program p = ProgramBuilder("job")
                        .seed(99)
                        .data_base(0x1000)
                        .serial(small_kernel(), 3)
                        .concurrent_loop(loop)
                        .build();
  EXPECT_EQ(p.name, "job");
  EXPECT_EQ(p.seed, 99u);
  EXPECT_EQ(p.data_base, 0x1000u);
  ASSERT_EQ(p.phases.size(), 2u);
  EXPECT_TRUE(std::holds_alternative<SerialPhase>(p.phases[0]));
  EXPECT_TRUE(std::holds_alternative<ConcurrentLoopPhase>(p.phases[1]));
}

TEST(Program, TotalConcurrentIterationsSumsLoops) {
  ConcurrentLoopPhase a;
  a.trip_count = 10;
  a.body = small_kernel();
  ConcurrentLoopPhase b;
  b.trip_count = 26;
  b.body = small_kernel();
  const Program p = ProgramBuilder("j")
                        .concurrent_loop(a)
                        .serial(small_kernel())
                        .concurrent_loop(b)
                        .build();
  EXPECT_EQ(p.total_concurrent_iterations(), 36u);
  EXPECT_TRUE(p.has_concurrency());
}

TEST(Program, SerialOnlyHasNoConcurrency) {
  const Program p = ProgramBuilder("s").serial(small_kernel(), 2).build();
  EXPECT_FALSE(p.has_concurrency());
  EXPECT_EQ(p.total_concurrent_iterations(), 0u);
}

TEST(Program, RejectsZeroTripCount) {
  ConcurrentLoopPhase loop;
  loop.trip_count = 0;
  loop.body = small_kernel();
  Program p;
  p.phases.push_back(loop);
  EXPECT_THROW(p.validate(), ContractViolation);
}

TEST(Program, RejectsZeroReps) {
  Program p;
  p.phases.push_back(SerialPhase{small_kernel(), 0});
  EXPECT_THROW(p.validate(), ContractViolation);
}

TEST(Program, RejectsBadLoopProbabilities) {
  ConcurrentLoopPhase loop;
  loop.trip_count = 4;
  loop.body = small_kernel();
  loop.dependence_prob = 1.5;
  Program p;
  p.phases.push_back(loop);
  EXPECT_THROW(p.validate(), ContractViolation);
}

TEST(Program, BuilderValidatesOnBuild) {
  ProgramBuilder builder("empty");
  EXPECT_THROW((void)builder.build(), ContractViolation);
}

}  // namespace
}  // namespace repro::isa
