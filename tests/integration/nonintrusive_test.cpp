// The §3.3 non-intrusiveness claim, as a property test.
//
// "the hardware monitoring is inherently non-intrusive ... no
// modifications were required to the system in order to perform the
// measurements." In the reproduction that must be literal: a system
// driven with the full instrumentation stack attached must follow the
// EXACT same trajectory as one driven bare. Any probe that perturbs the
// machine (a stray tick, a shared RNG draw, a cache access) breaks this.
#include <gtest/gtest.h>

#include "instr/session_controller.hpp"
#include "os/system.hpp"
#include "trace/tracer.hpp"
#include "workload/generator.hpp"
#include "workload/presets.hpp"

namespace repro::instr {
namespace {

struct Trajectory {
  Cycle cycles = 0;
  std::uint64_t page_faults = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_accesses = 0;
  std::uint64_t iterations = 0;

  bool operator==(const Trajectory&) const = default;
};

Trajectory snapshot(const os::System& system) {
  Trajectory t;
  t.cycles = system.now();
  t.page_faults = system.counters().ce_page_faults();
  t.jobs_completed =
      system.counters().read(os::KernelCounter::kJobsCompleted);
  t.cache_misses = system.machine().shared_cache().stats().misses;
  t.cache_accesses = system.machine().shared_cache().stats().accesses;
  t.iterations = system.machine().cluster().stats().iterations_completed;
  return t;
}

TEST(NonIntrusive, SamplingDoesNotPerturbTheMachine) {
  const workload::WorkloadMix mix = workload::session_presets()[2];
  constexpr Cycle kCycles = 120000;
  constexpr std::uint64_t kSeed = 0x0B5E;

  // Bare run: workload + system only.
  os::System bare{os::SystemConfig{}};
  workload::WorkloadGenerator bare_generator(mix, kSeed);
  for (Cycle c = 0; c < kCycles; ++c) {
    bare_generator.tick(bare);
    bare.tick();
  }

  // Instrumented run: same seeds, full sampling via the DAS controller.
  os::System measured{os::SystemConfig{}};
  workload::WorkloadGenerator measured_generator(mix, kSeed);
  SamplingConfig sampling;
  sampling.interval_cycles = kCycles / 2;
  SessionController controller(measured, measured_generator, sampling,
                               0x12345);
  (void)controller.run_session(2);  // drives exactly kCycles cycles

  EXPECT_EQ(snapshot(bare), snapshot(measured))
      << "instrumentation perturbed the machine trajectory";
}

TEST(NonIntrusive, TracingDoesNotPerturbTheMachineEither) {
  const workload::WorkloadMix mix = workload::session_presets()[5];
  constexpr Cycle kCycles = 80000;

  os::System bare{os::SystemConfig{}};
  workload::WorkloadGenerator bare_generator(mix, 0x77AACE);
  for (Cycle c = 0; c < kCycles; ++c) {
    bare_generator.tick(bare);
    bare.tick();
  }

  os::System traced{os::SystemConfig{}};
  trace::EventTracer tracer;
  traced.machine().cluster().set_observer(&tracer);
  workload::WorkloadGenerator traced_generator(mix, 0x77AACE);
  for (Cycle c = 0; c < kCycles; ++c) {
    traced_generator.tick(traced);
    traced.tick();
  }

  EXPECT_EQ(snapshot(bare), snapshot(traced))
      << "the marker tracer perturbed the machine trajectory";
  EXPECT_FALSE(tracer.events().empty());
}

}  // namespace
}  // namespace repro::instr
