// Failure-injection / pathological-configuration stress tests.
//
// Each case pushes one subsystem to a degenerate operating point and
// asserts the whole stack still terminates with sane measures — the
// reproduction must not depend on the calibrated "happy path".
#include <gtest/gtest.h>

#include "core/study.hpp"
#include "instr/session_controller.hpp"
#include "os/system.hpp"
#include "workload/generator.hpp"
#include "workload/presets.hpp"

namespace repro::core {
namespace {

/// Run a short sampled session under the given system/mix and return the
/// analyzed samples; fails the test if anything hangs.
std::vector<AnalyzedSample> run_short(const os::SystemConfig& system_config,
                                      const workload::WorkloadMix& mix,
                                      std::uint64_t seed) {
  os::System system{system_config};
  workload::WorkloadGenerator generator(mix, seed);
  instr::SamplingConfig sampling;
  sampling.interval_cycles = 20000;
  instr::SessionController controller(system, generator, sampling, seed);
  return analyze_all(controller.run_session(2),
                     system.machine().cluster().width());
}

void expect_sane(const std::vector<AnalyzedSample>& samples) {
  for (const AnalyzedSample& sample : samples) {
    EXPECT_GE(sample.measures.cw, 0.0);
    EXPECT_LE(sample.measures.cw, 1.0);
    EXPECT_GE(sample.miss_rate, 0.0);
    EXPECT_LE(sample.miss_rate, 1.0);
    EXPECT_GE(sample.bus_busy, 0.0);
    EXPECT_LE(sample.bus_busy, 1.0);
    if (sample.measures.pc_defined) {
      EXPECT_GE(sample.measures.pc, 2.0);
      EXPECT_LE(sample.measures.pc, 8.0 + 1e-9);
    }
  }
}

TEST(Stress, ThrashingVirtualMemory) {
  // One-page resident sets: every new page touch evicts; faults dominate.
  os::SystemConfig config;
  config.vm.resident_limit_pages = 1;
  config.vm.fault_service_cycles = 200;
  const auto samples =
      run_short(config, workload::session_presets()[2], 1);
  expect_sane(samples);
  // The thrash shows up in the counters.
  std::uint64_t faults = 0;
  for (const AnalyzedSample& sample : samples) {
    faults += sample.raw.sw.ce_page_faults();
  }
  EXPECT_GT(faults, 0u);
}

TEST(Stress, FullySerialDependenceChains) {
  // Every iteration depends on its predecessor: loops serialize entirely.
  workload::WorkloadMix mix = workload::high_concurrency_mix();
  mix.numeric.dependence_prob = 1.0;
  const auto samples = run_short(os::SystemConfig{}, mix, 2);
  expect_sane(samples);
}

TEST(Stress, SingleIterationLoops) {
  workload::WorkloadMix mix;
  mix.concurrent_job_fraction = 1.0;
  mix.mean_idle_cycles = 0;
  mix.numeric.trip_law.weight_multiple_of_width = 0.0;
  mix.numeric.trip_law.weight_two_leftover = 0.0;
  mix.numeric.trip_law.weight_uniform = 0.0;
  mix.numeric.trip_law.weight_narrow = 1.0;
  mix.numeric.trip_law.width = 2;  // narrow mode degenerates to trip 1
  const auto samples = run_short(os::SystemConfig{}, mix, 3);
  expect_sane(samples);
}

TEST(Stress, GiantCodeFootprintsThrashTheIcache) {
  workload::WorkloadMix mix = workload::session_presets()[2];
  mix.numeric.tuning.concurrent_compute_cycles = 2;
  const auto samples = run_short(os::SystemConfig{}, mix, 4);
  expect_sane(samples);
}

TEST(Stress, SaturatedArrivalsNeverIdle) {
  workload::WorkloadMix mix = workload::session_presets()[5];
  mix.mean_idle_cycles = 0;
  mix.mean_burst_jobs = 8.0;
  const auto samples = run_short(os::SystemConfig{}, mix, 5);
  expect_sane(samples);
  // Machine should be busy nearly all the time.
  double cw_sum = 0.0;
  for (const AnalyzedSample& sample : samples) {
    cw_sum += sample.measures.cw;
  }
  EXPECT_GT(cw_sum / static_cast<double>(samples.size()), 0.3);
}

TEST(Stress, NarrowTwoCeMachineRunsTheFullStack) {
  os::SystemConfig config;
  config.machine.cluster.n_ces = 2;
  config.machine.cluster.policy = fx8::ServicePolicy::kAscending;
  workload::WorkloadMix mix = workload::session_presets()[2];
  mix.numeric.trip_law.width = 2;
  const auto samples = run_short(config, mix, 6);
  expect_sane(samples);
}

TEST(Stress, ZeroDutyIpsAndIdleWorkload) {
  os::SystemConfig config;
  config.machine.ip.duty = 0.0;
  workload::WorkloadMix mix;
  mix.mean_idle_cycles = 1e9;  // never submits after the first burst
  mix.concurrent_job_fraction = 0.0;
  const auto samples = run_short(config, mix, 7);
  expect_sane(samples);
}

}  // namespace
}  // namespace repro::core
