// Integration tests across the whole stack: workload -> OS -> machine ->
// instrumentation -> measures. These are the "does the reproduction hang
// together" checks: each asserts a behaviour the paper reports, at small
// scale so the suite stays fast.
#include <gtest/gtest.h>

#include "core/presets.hpp"
#include "core/regression_models.hpp"
#include "core/study.hpp"
#include "core/transition.hpp"
#include "workload/presets.hpp"

namespace repro::core {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  static const StudyResult& study() {
    static const StudyResult result = [] {
      const auto mixes = workload::session_presets();
      return run_study(mixes, presets::small_study());
    }();
    return result;
  }
};

TEST_F(EndToEnd, ClusterLivesInIdleSerialOrFullConcurrency) {
  // Paper §4.2: "the CE Cluster spends the majority of its time in one of
  // three states: full concurrency, serial, or idle."
  const auto& num = study().totals.num;
  std::uint64_t corner = num[0] + num[1] + num[8];
  std::uint64_t middle = 0;
  for (std::size_t j = 2; j <= 7; ++j) {
    middle += num[j];
  }
  EXPECT_GT(corner, 5 * middle);
}

TEST_F(EndToEnd, WorkloadConcurrencyInPaperBallpark) {
  // Paper: Cw = 0.35 overall. Accept a generous band at this tiny scale.
  EXPECT_GT(study().overall.cw, 0.15);
  EXPECT_LT(study().overall.cw, 0.60);
}

TEST_F(EndToEnd, ConcurrentOperationsUseMostProcessors) {
  // Paper: Pc = 7.66, c(8|c) = 0.93.
  ASSERT_TRUE(study().overall.pc_defined);
  EXPECT_GT(study().overall.pc, 6.0);
  EXPECT_GT(study().overall.c_cond[8], 0.6);
}

TEST_F(EndToEnd, MissRateRisesWithWorkloadConcurrency) {
  // Paper §5.1/Table 3: median miss rate increases with Cw.
  const auto samples = study().all_samples();
  const MedianModel model =
      fit_model(samples, SystemMeasure::kMissRate, Regressor::kCw);
  EXPECT_GT(model.predict(1.0), 2.0 * model.predict(0.3));
}

TEST_F(EndToEnd, BusBusyRisesWithWorkloadConcurrency) {
  const auto samples = study().all_samples();
  const MedianModel model =
      fit_model(samples, SystemMeasure::kBusBusy, Regressor::kCw);
  EXPECT_GT(model.predict(1.0), model.predict(0.2));
  // Bus busy stays physical.
  EXPECT_LT(model.predict(1.0), 1.0);
}

TEST_F(EndToEnd, PageFaultsRiseWithWorkloadConcurrency) {
  const auto samples = study().all_samples();
  const MedianModel model =
      fit_model(samples, SystemMeasure::kPageFaultRate, Regressor::kCw);
  EXPECT_GT(model.predict(1.0), model.predict(0.1));
}

TEST_F(EndToEnd, SessionsVarySignificantly) {
  // Paper Appendix A: individual sessions differ widely.
  double lo = 1.0;
  double hi = 0.0;
  for (const SessionResult& session : study().sessions) {
    lo = std::min(lo, session.overall.cw);
    hi = std::max(hi, session.overall.cw);
  }
  EXPECT_GT(hi - lo, 0.2);
}

TEST(EndToEndTransition, TwoActiveIsTheLeadingTransitionState) {
  // Paper §4.3 / Figure 6: the 2-active state dominates transitions.
  TransitionConfig config = presets::bench_transition();
  config.captures = 12;  // enough for the dominant state, fast
  const TransitionResult result = run_transition_study(
      workload::high_concurrency_mix(), config);
  ASSERT_GT(result.captures_completed, 0u);
  double max_other = 0.0;
  for (std::uint32_t j = 3; j < 8; ++j) {
    max_other = std::max(max_other, result.transition_share(j));
  }
  EXPECT_GT(result.transition_share(2), max_other * 0.9);
}

TEST(EndToEndTransition, OuterProcessorsLingerLongest) {
  // Paper Figure 7: CEs 7 and 0 more active; CEs 2-4 less. Needs enough
  // captures for the per-loop variation to average out.
  TransitionConfig config = presets::bench_transition();
  config.captures = 50;
  const TransitionResult result = run_transition_study(
      workload::high_concurrency_mix(), config);
  const auto& proc = result.processor_counts;
  const double outer =
      static_cast<double>(proc[7] + proc[0]) / 2.0;
  const double inner =
      static_cast<double>(proc[2] + proc[3] + proc[4]) / 3.0;
  EXPECT_GT(outer, inner);
}

}  // namespace
}  // namespace repro::core
