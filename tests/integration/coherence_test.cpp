// Integration: IP/CE cache coherence under concurrent activity.
//
// Appendix C: "The caches maintain data coherency by requiring that a
// cache possess a 'unique' copy of data before modifying it." IPs and
// CEs share main memory; an IP write to a line a CE has cached must
// revoke the CE cache's copy, and the machine must keep running
// correctly while that happens.
#include <gtest/gtest.h>

#include "fx8/machine.hpp"
#include "fx8/mmu.hpp"
#include "isa/program.hpp"
#include "workload/kernels.hpp"

namespace repro::fx8 {
namespace {

TEST(Coherence, IpWritesRevokeCeCacheLines) {
  NoFaultMmu mmu;
  MachineConfig config = MachineConfig::fx8();
  config.ip.duty = 1.0;             // IPs hammer their region
  config.ip.write_fraction = 0.5;   // half of IP accesses are writes
  Machine machine(config, mmu);

  // Run a concurrent job long enough for IP writes to overlap CE work.
  workload::KernelTuning tuning;
  isa::ConcurrentLoopPhase loop;
  loop.body = workload::matmul_row_body(tuning);
  loop.trip_count = 200;
  const isa::Program program = isa::ProgramBuilder("coherence")
                                   .data_base(0x01000000)
                                   .concurrent_loop(loop)
                                   .build();
  machine.cluster().load(&program, 1);
  Cycle guard = 0;
  while (machine.cluster().busy()) {
    machine.tick();
    ASSERT_LT(++guard, 5'000'000u);
  }

  // Every iteration completed despite the snoop traffic.
  EXPECT_EQ(machine.cluster().stats().iterations_completed, 200u);
  // IP writes happened and produced snoops.
  std::uint64_t ip_accesses = 0;
  for (const Ip& ip : machine.ips()) {
    ip_accesses += ip.accesses_issued();
  }
  EXPECT_GT(ip_accesses, 0u);
}

TEST(Coherence, SnoopsOnSharedRegionForceRefetch) {
  // Directly overlap the IP region with a CE's cached line: the CE must
  // re-miss after the IP writes.
  NoFaultMmu mmu;
  MachineConfig config = MachineConfig::fx8();
  config.ip.duty = 0.0;  // manual control below
  Machine machine(config, mmu);
  auto& cache = machine.shared_cache();

  // Prime a line through the CE side at the IP region's base address.
  const Addr shared_addr = 0xE0000000ULL;
  (void)cache.access(0, shared_addr, cache::AccessType::kRead);
  for (int i = 0; i < 100 && !cache.take_fill_ready(0); ++i) {
    machine.tick();
  }
  ASSERT_TRUE(cache.contains(shared_addr));

  // The snoop hook is wired through the machine: emulate the IP write by
  // invalidating via the shared-cache interface the IpCache drives.
  cache.snoop_invalidate(shared_addr);
  EXPECT_FALSE(cache.contains(shared_addr));
  EXPECT_EQ(cache.access(0, shared_addr, cache::AccessType::kRead),
            cache::AccessOutcome::kMissStarted);
}

TEST(Coherence, WriteUpgradesBroadcastInvalidates) {
  NoFaultMmu mmu;
  Machine machine(MachineConfig::fx8(), mmu);
  auto& cache = machine.shared_cache();
  auto& bus = machine.membus();

  const Addr addr = 0x02000000;
  (void)cache.access(1, addr, cache::AccessType::kRead);
  for (int i = 0; i < 100 && !cache.take_fill_ready(1); ++i) {
    machine.tick();
  }
  const std::uint64_t invalidates_before =
      bus.op_cycles(0, mem::MemBusOp::kInvalidate) +
      bus.op_cycles(1, mem::MemBusOp::kInvalidate);
  // Write to the Shared line: must upgrade with an invalidate broadcast.
  ASSERT_EQ(cache.access(1, addr, cache::AccessType::kWrite),
            cache::AccessOutcome::kHit);
  machine.run(10);
  const std::uint64_t invalidates_after =
      bus.op_cycles(0, mem::MemBusOp::kInvalidate) +
      bus.op_cycles(1, mem::MemBusOp::kInvalidate);
  EXPECT_GT(invalidates_after, invalidates_before);
}

}  // namespace
}  // namespace repro::fx8
