// Regression tests for the calibration mechanisms of DESIGN.md §8.
//
// These are the structural properties the reproduction's shapes depend
// on. If one breaks, benches will drift long before a unit test of any
// single module notices — so they are pinned here explicitly.
#include <gtest/gtest.h>

#include "fx8/machine.hpp"
#include "fx8/mmu.hpp"
#include "isa/program.hpp"
#include "trace/profile.hpp"
#include "trace/tracer.hpp"
#include "workload/kernels.hpp"

namespace repro::fx8 {
namespace {

isa::ConcurrentLoopPhase plain_loop(std::uint64_t trip) {
  workload::KernelTuning tuning;
  isa::ConcurrentLoopPhase loop;
  loop.body = workload::matmul_row_body(tuning);
  loop.trip_count = trip;
  return loop;
}

// §8.2: iterations of the same loop execute the same instruction
// sequence — with no long paths and no memory accesses, every iteration
// of a vectorized body takes exactly the same number of cycles. (With
// memory, durations vary with line-reuse phase; the compute schedule
// itself must not.)
TEST(CalibrationMechanisms, UniformIterationDurations) {
  NoFaultMmu mmu;
  MachineConfig config = MachineConfig::fx8();
  config.cluster.n_ces = 1;  // isolation: no contention effects
  config.cluster.policy = ServicePolicy::kAscending;
  config.ip.duty = 0.0;
  Machine machine(config, mmu);
  trace::EventTracer tracer;
  machine.cluster().set_observer(&tracer);

  isa::ConcurrentLoopPhase loop = plain_loop(12);
  loop.body.loads_per_step = 0;
  loop.body.stores_per_step = 0;  // pure compute + vector schedule
  const isa::Program program = isa::ProgramBuilder("uniform")
                                   .data_base(0x01000000)
                                   .concurrent_loop(loop)
                                   .build();
  machine.cluster().load(&program, 1);
  while (machine.cluster().busy()) {
    machine.tick();
  }

  // Durations from the trace: all equal after the first (which pays the
  // cold-cache and cold-page costs).
  std::vector<Cycle> durations;
  std::array<Cycle, 64> starts{};
  for (const trace::TraceEvent& event : tracer.events()) {
    if (event.kind == trace::EventKind::kIterationStart) {
      starts[event.arg] = event.time;
    } else if (event.kind == trace::EventKind::kIterationEnd) {
      durations.push_back(event.time - starts[event.arg]);
    }
  }
  ASSERT_EQ(durations.size(), 12u);
  for (std::size_t i = 1; i < durations.size(); ++i) {
    EXPECT_EQ(durations[i], durations[0])
        << "iteration " << i << " diverged: vectorized bodies must be "
        << "cycle-identical (DESIGN.md §8.2)";
  }
}

// §8.1: concurrently executing iterations walk the same cache lines, so
// fills merge and the miss count does not scale with the gang size.
TEST(CalibrationMechanisms, GangFillSharingKeepsMissVolumeFlat) {
  auto misses_with_width = [](std::uint32_t width) {
    NoFaultMmu mmu;
    MachineConfig config = MachineConfig::fx8();
    config.cluster.n_ces = width;
    config.cluster.policy = ServicePolicy::kAscending;
    config.ip.duty = 0.0;
    Machine machine(config, mmu);
    const isa::ConcurrentLoopPhase loop = plain_loop(64);
    const isa::Program program = isa::ProgramBuilder("gang")
                                     .data_base(0x01000000)
                                     .concurrent_loop(loop)
                                     .build();
    machine.cluster().load(&program, 1);
    while (machine.cluster().busy()) {
      machine.tick();
    }
    // Actual line fetches: merged misses ride an existing fill.
    const auto& stats = machine.shared_cache().stats();
    return stats.misses - stats.merged_misses;
  };

  const std::uint64_t fetches_1 = misses_with_width(1);
  const std::uint64_t fetches_8 = misses_with_width(8);
  // Same loop, same total data. Without cross-CE sharing the 8-wide gang
  // would fetch up to 8x the lines; sharing must recover most of that.
  EXPECT_LT(static_cast<double>(fetches_8),
            0.5 * 8.0 * static_cast<double>(fetches_1))
      << "miss volume scaled with gang size: cross-CE sharing broken "
      << "(DESIGN.md §8.1)";
}

// §8.1 companion: merged fills actually occur under the gang.
TEST(CalibrationMechanisms, GangExecutionMergesFills) {
  NoFaultMmu mmu;
  MachineConfig config = MachineConfig::fx8();
  config.ip.duty = 0.0;
  Machine machine(config, mmu);
  const isa::ConcurrentLoopPhase loop = plain_loop(64);
  const isa::Program program = isa::ProgramBuilder("merge")
                                   .data_base(0x01000000)
                                   .concurrent_loop(loop)
                                   .build();
  machine.cluster().load(&program, 1);
  while (machine.cluster().busy()) {
    machine.tick();
  }
  EXPECT_GT(machine.shared_cache().stats().merged_misses, 0u);
}

// §8.4: the transition lingerers are a deterministic function of the
// service order. Same loop, same seed => identical final-active mask.
TEST(CalibrationMechanisms, LingererIdentityIsDeterministic) {
  auto last_pair_mask = [] {
    NoFaultMmu mmu;
    MachineConfig config = MachineConfig::fx8();
    config.ip.duty = 0.0;
    Machine machine(config, mmu);
    isa::ConcurrentLoopPhase loop = plain_loop(8 * 5 + 2);
    const isa::Program program = isa::ProgramBuilder("linger")
                                     .seed(4242)
                                     .data_base(0x01000000)
                                     .concurrent_loop(loop)
                                     .build();
    machine.cluster().load(&program, 1);
    repro::LaneMask last_two_mask = 0;
    while (machine.cluster().busy()) {
      machine.tick();
      if (machine.cluster().active_count() == 2) {
        last_two_mask = machine.active_mask();
      }
    }
    return last_two_mask;
  };
  const repro::LaneMask first = last_pair_mask();
  EXPECT_EQ(first, last_pair_mask());
  EXPECT_NE(first, 0u);  // a 2-active tail existed
}

}  // namespace
}  // namespace repro::fx8
