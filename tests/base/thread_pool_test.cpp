#include "base/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace repro::base {
namespace {

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  std::atomic<int> ran{0};
  auto future = pool.submit([&ran] {
    ++ran;
    return 7;
  });
  // With no workers the task ran inside submit, before get().
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(future.get(), 7);
}

TEST(ThreadPool, SingleWorkerPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& future : futures) {
    future.get();
  }
  std::vector<int> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, ManyWorkersRunEveryTask) {
  ThreadPool pool(8);
  EXPECT_EQ(pool.worker_count(), 8u);
  std::atomic<int> sum{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&sum, i] {
      sum += i;
      return i * 2;
    }));
  }
  // Futures map to their own task's result regardless of which worker
  // ran it.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * 2);
  }
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 1; });
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_EQ(ok.get(), 1);
  EXPECT_THROW((void)bad.get(), std::runtime_error);
}

TEST(ThreadPool, ExceptionPropagatesFromInlinePool) {
  ThreadPool pool(0);
  auto bad = pool.submit([]() -> int { throw std::logic_error("inline"); });
  EXPECT_THROW((void)bad.get(), std::logic_error);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      (void)pool.submit([&ran] { ++ran; });
    }
  }  // destructor joins after the queue drains
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, HardwareWorkersIsPositive) {
  EXPECT_GE(ThreadPool::hardware_workers(), 1u);
}

TEST(ThreadPool, ResolveWorkersPrefersExplicitRequest) {
  EXPECT_EQ(ThreadPool::resolve_workers(3), 3u);
}

TEST(ThreadPool, ParseThreadCountIsStrict) {
  EXPECT_EQ(ThreadPool::parse_thread_count("1"), 1u);
  EXPECT_EQ(ThreadPool::parse_thread_count("16"), 16u);
  EXPECT_EQ(ThreadPool::parse_thread_count("1024"), 1024u);
  // Everything else is invalid: zero, signs, whitespace, trailing
  // characters, empty, overflow past kMaxWorkers.
  EXPECT_EQ(ThreadPool::parse_thread_count("0"), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_count("1025"), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_count("+4"), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_count("-4"), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_count(" 4"), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_count("4 "), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_count("4x"), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_count("0x4"), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_count(""), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_count("99999999999999999999"), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_count(nullptr), 0u);
}

TEST(ThreadPool, ResolveWorkersRejectsInvalidEnvironment) {
  // A typo'd FX8_THREADS must fall back to the hardware count, not
  // strtoul-prefix-parse its way into a wrong worker count.
  ASSERT_EQ(setenv("FX8_THREADS", "8cores", 1), 0);
  EXPECT_EQ(ThreadPool::resolve_workers(0), ThreadPool::hardware_workers());
  ASSERT_EQ(setenv("FX8_THREADS", "0", 1), 0);
  EXPECT_EQ(ThreadPool::resolve_workers(0), ThreadPool::hardware_workers());
  ASSERT_EQ(unsetenv("FX8_THREADS"), 0);
}

TEST(ThreadPool, ResolveWorkersReadsEnvironment) {
  ASSERT_EQ(setenv("FX8_THREADS", "5", 1), 0);
  EXPECT_EQ(ThreadPool::resolve_workers(0), 5u);
  // Explicit request still wins over the environment.
  EXPECT_EQ(ThreadPool::resolve_workers(2), 2u);
  ASSERT_EQ(setenv("FX8_THREADS", "not-a-number", 1), 0);
  EXPECT_EQ(ThreadPool::resolve_workers(0), ThreadPool::hardware_workers());
  ASSERT_EQ(unsetenv("FX8_THREADS"), 0);
  EXPECT_EQ(ThreadPool::resolve_workers(0), ThreadPool::hardware_workers());
}

}  // namespace
}  // namespace repro::base
