#include "base/text.hpp"

#include <gtest/gtest.h>

namespace repro {
namespace {

TEST(Text, FixedRounds) {
  EXPECT_EQ(fixed(0.3456, 3), "0.346");
  EXPECT_EQ(fixed(2.0, 2), "2.00");
  EXPECT_EQ(fixed(-1.005, 1), "-1.0");
}

TEST(Text, Percent) {
  EXPECT_EQ(percent(0.5212, 2), "52.12");
  EXPECT_EQ(percent(1.0, 0), "100");
}

TEST(Text, Scientific) {
  EXPECT_EQ(scientific(0.0257, 2), "2.57e-02");
  EXPECT_EQ(scientific(-33000.0, 1), "-3.3e+04");
}

TEST(Text, PadLeft) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");
}

TEST(Text, PadRight) {
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_right("abcdef", 3), "abcdef");
}

TEST(Text, Bar) {
  EXPECT_EQ(bar(4), "****");
  EXPECT_EQ(bar(0), "");
  EXPECT_EQ(bar(3, '#'), "###");
}

TEST(Text, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(231112), "231,112");
  EXPECT_EQ(with_commas(1234567890), "1,234,567,890");
}

TEST(Text, ParseU64StrictAcceptsPlainDigits) {
  std::uint64_t out = 7;
  EXPECT_TRUE(parse_u64_strict("0", out));
  EXPECT_EQ(out, 0u);
  EXPECT_TRUE(parse_u64_strict("20000", out));
  EXPECT_EQ(out, 20000u);
  EXPECT_TRUE(parse_u64_strict("18446744073709551615", out));  // UINT64_MAX.
  EXPECT_EQ(out, 18446744073709551615ull);
}

TEST(Text, ParseU64StrictRejectsMalformedInput) {
  std::uint64_t out = 42;
  EXPECT_FALSE(parse_u64_strict(nullptr, out));
  EXPECT_FALSE(parse_u64_strict("", out));
  EXPECT_FALSE(parse_u64_strict("2junk", out));   // Trailing garbage.
  EXPECT_FALSE(parse_u64_strict(" 7", out));      // Leading whitespace.
  EXPECT_FALSE(parse_u64_strict("7 ", out));      // Trailing whitespace.
  EXPECT_FALSE(parse_u64_strict("-3", out));      // strtoull would wrap this.
  EXPECT_FALSE(parse_u64_strict("+3", out));
  EXPECT_FALSE(parse_u64_strict("0x10", out));    // Hex needs base 0.
  EXPECT_FALSE(parse_u64_strict("18446744073709551616", out));  // Overflow.
  EXPECT_EQ(out, 42u);  // Failures leave the output untouched.
}

TEST(Text, ParseU64StrictBaseZeroAcceptsHexSeeds) {
  std::uint64_t out = 0;
  EXPECT_TRUE(parse_u64_strict("0x5E5510", out, 0));
  EXPECT_EQ(out, 0x5E5510u);
  EXPECT_TRUE(parse_u64_strict("644", out, 0));  // Octal prefix rules: 0644.
  EXPECT_TRUE(parse_u64_strict("0644", out, 0));
  EXPECT_EQ(out, 0644u);
  EXPECT_FALSE(parse_u64_strict("0xzz", out, 0));
  EXPECT_FALSE(parse_u64_strict("x10", out, 0));  // Must start with a digit.
}

TEST(Text, ParseU32StrictEnforcesRange) {
  std::uint32_t out = 9;
  EXPECT_TRUE(parse_u32_strict("4294967295", out));  // UINT32_MAX.
  EXPECT_EQ(out, 4294967295u);
  EXPECT_FALSE(parse_u32_strict("4294967296", out));  // One past the range.
  EXPECT_FALSE(parse_u32_strict("99999999999", out));
  EXPECT_FALSE(parse_u32_strict("12x", out));
  EXPECT_EQ(out, 4294967295u);
}

TEST(Text, EditDistance) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("abc", "abc"), 0u);
  EXPECT_EQ(edit_distance("", "abc"), 3u);
  EXPECT_EQ(edit_distance("abc", ""), 3u);
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);  // The classic.
  EXPECT_EQ(edit_distance("fig99", "fig9"), 1u);      // Deletion.
  EXPECT_EQ(edit_distance("fig9", "fig99"), 1u);      // Insertion.
  EXPECT_EQ(edit_distance("tabel2", "table2"), 2u);   // Transposition.
  EXPECT_EQ(edit_distance("abc", "xyz"), 3u);         // All substitutions.
}

}  // namespace
}  // namespace repro
