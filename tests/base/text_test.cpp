#include "base/text.hpp"

#include <gtest/gtest.h>

namespace repro {
namespace {

TEST(Text, FixedRounds) {
  EXPECT_EQ(fixed(0.3456, 3), "0.346");
  EXPECT_EQ(fixed(2.0, 2), "2.00");
  EXPECT_EQ(fixed(-1.005, 1), "-1.0");
}

TEST(Text, Percent) {
  EXPECT_EQ(percent(0.5212, 2), "52.12");
  EXPECT_EQ(percent(1.0, 0), "100");
}

TEST(Text, Scientific) {
  EXPECT_EQ(scientific(0.0257, 2), "2.57e-02");
  EXPECT_EQ(scientific(-33000.0, 1), "-3.3e+04");
}

TEST(Text, PadLeft) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");
}

TEST(Text, PadRight) {
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_right("abcdef", 3), "abcdef");
}

TEST(Text, Bar) {
  EXPECT_EQ(bar(4), "****");
  EXPECT_EQ(bar(0), "");
  EXPECT_EQ(bar(3, '#'), "###");
}

TEST(Text, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(231112), "231,112");
  EXPECT_EQ(with_commas(1234567890), "1,234,567,890");
}

TEST(Text, EditDistance) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("abc", "abc"), 0u);
  EXPECT_EQ(edit_distance("", "abc"), 3u);
  EXPECT_EQ(edit_distance("abc", ""), 3u);
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);  // The classic.
  EXPECT_EQ(edit_distance("fig99", "fig9"), 1u);      // Deletion.
  EXPECT_EQ(edit_distance("fig9", "fig99"), 1u);      // Insertion.
  EXPECT_EQ(edit_distance("tabel2", "table2"), 2u);   // Transposition.
  EXPECT_EQ(edit_distance("abc", "xyz"), 3u);         // All substitutions.
}

}  // namespace
}  // namespace repro
