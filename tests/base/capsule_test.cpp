#include "base/capsule.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

namespace repro::capsule {
namespace {

enum class Flavor : std::uint8_t { kPlain = 1, kFancy = 7 };

/// A struct exercising every Io primitive through the one-walk idiom
/// the real components use.
struct Blob {
  std::uint8_t a = 0;
  std::uint16_t b = 0;
  std::uint32_t c = 0;
  std::uint64_t d = 0;
  std::int64_t e = 0;
  double f = 0.0;
  bool g = false;
  std::string h;
  Flavor flavor = Flavor::kPlain;
  std::vector<std::uint32_t> items;

  void serialize(Io& io) {
    io.u8(a);
    io.u16(b);
    io.u32(c);
    io.u64(d);
    io.i64(e);
    io.f64(f);
    io.boolean(g);
    io.str(h);
    io.enum32(flavor);
    const std::uint64_t n = io.extent(items.size());
    if (io.loading()) {
      items.assign(static_cast<std::size_t>(n), 0);
    }
    for (std::uint32_t& item : items) {
      io.u32(item);
    }
  }
};

Blob sample_blob() {
  Blob blob;
  blob.a = 0xA5;
  blob.b = 0xBEEF;
  blob.c = 0xDEADBEEF;
  blob.d = 0x0123456789ABCDEFULL;
  blob.e = -42;
  blob.f = 0.1;
  blob.g = true;
  blob.h = "nine sessions";
  blob.flavor = Flavor::kFancy;
  blob.items = {1, 2, 3, 0xFFFFFFFF};
  return blob;
}

TEST(CapsuleIo, PrimitivesRoundTrip) {
  Blob out = sample_blob();
  Io saver = Io::saver();
  out.serialize(saver);

  Blob in;
  Io loader = Io::loader(saver.bytes());
  in.serialize(loader);

  EXPECT_EQ(in.a, out.a);
  EXPECT_EQ(in.b, out.b);
  EXPECT_EQ(in.c, out.c);
  EXPECT_EQ(in.d, out.d);
  EXPECT_EQ(in.e, out.e);
  EXPECT_EQ(in.f, out.f);
  EXPECT_EQ(in.g, out.g);
  EXPECT_EQ(in.h, out.h);
  EXPECT_EQ(in.flavor, out.flavor);
  EXPECT_EQ(in.items, out.items);
  EXPECT_TRUE(loader.exhausted());
}

TEST(CapsuleIo, DoublesKeepTheirExactBitPattern) {
  // NaN payloads and negative zero don't survive value comparison, so
  // the walk must transport the raw bit pattern.
  const std::uint64_t nan_bits = 0x7FF8DEADBEEF1234ULL;
  double out = std::bit_cast<double>(nan_bits);
  Io saver = Io::saver();
  saver.f64(out);

  double in = 0.0;
  Io loader = Io::loader(saver.bytes());
  loader.f64(in);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(in), nan_bits);

  double zero = -0.0;
  Io saver2 = Io::saver();
  saver2.f64(zero);
  double back = 0.0;
  Io loader2 = Io::loader(saver2.bytes());
  loader2.f64(back);
  EXPECT_TRUE(std::signbit(back));
}

TEST(CapsuleIo, SaverDigestEqualsDigesterDigest) {
  // The contract the whole checkpoint design leans on: digesting in
  // place sees exactly the bytes a save would encode.
  Blob blob = sample_blob();
  Io saver = Io::saver();
  blob.serialize(saver);
  Io digester = Io::digester();
  blob.serialize(digester);
  EXPECT_EQ(saver.digest(), digester.digest());
  EXPECT_TRUE(digester.bytes().empty());
}

TEST(CapsuleIo, DigestDiscriminatesContent) {
  Blob a = sample_blob();
  Blob b = sample_blob();
  b.items.back() ^= 1;
  Io da = Io::digester();
  a.serialize(da);
  Io db = Io::digester();
  b.serialize(db);
  EXPECT_NE(da.digest(), db.digest());
}

TEST(CapsuleIo, RejectsCorruptBoolEncoding) {
  Io loader = Io::loader({2});
  bool value = false;
  EXPECT_THROW(loader.boolean(value), CapsuleError);
}

TEST(CapsuleIo, RejectsTruncatedPayload) {
  Io loader = Io::loader({0x01, 0x02});
  std::uint32_t value = 0;
  EXPECT_THROW(loader.u32(value), CapsuleError);
}

TEST(CapsuleIo, RejectsStringPastPayloadEnd) {
  // Length prefix claims 5 bytes; only 2 follow.
  std::vector<std::uint8_t> payload = {5, 0, 0, 0, 0, 0, 0, 0, 'a', 'b'};
  Io loader = Io::loader(std::move(payload));
  std::string value;
  EXPECT_THROW(loader.str(value), CapsuleError);
}

TEST(CapsuleIo, ExhaustedTracksConsumption) {
  Io saver = Io::saver();
  std::uint64_t value = 7;
  saver.u64(value);
  Io loader = Io::loader(saver.bytes());
  EXPECT_FALSE(loader.exhausted());
  std::uint64_t back = 0;
  loader.u64(back);
  EXPECT_TRUE(loader.exhausted());
}

TEST(CapsuleEnvelope, SealUnsealRoundTrip) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  EXPECT_EQ(unseal(seal(payload)), payload);
  EXPECT_EQ(unseal(seal({})), std::vector<std::uint8_t>{});
}

TEST(CapsuleEnvelope, RejectsBadMagic) {
  std::vector<std::uint8_t> sealed = seal({1, 2, 3});
  sealed[0] = 'G';
  EXPECT_THROW((void)unseal(sealed), CapsuleError);
}

TEST(CapsuleEnvelope, RejectsVersionSkew) {
  // The u32 format version sits right after the 8-byte magic.
  std::vector<std::uint8_t> sealed = seal({1, 2, 3});
  sealed[8] = static_cast<std::uint8_t>(kFormatVersion + 1);
  EXPECT_THROW((void)unseal(sealed), CapsuleError);
}

TEST(CapsuleEnvelope, RejectsTruncation) {
  std::vector<std::uint8_t> sealed = seal({1, 2, 3});
  sealed.pop_back();
  EXPECT_THROW((void)unseal(sealed), CapsuleError);
  EXPECT_THROW((void)unseal({sealed.begin(), sealed.begin() + 4}),
               CapsuleError);
}

TEST(CapsuleEnvelope, RejectsPayloadCorruption) {
  std::vector<std::uint8_t> sealed = seal({1, 2, 3, 4});
  // Flip one payload bit; the trailing digest must catch it.
  sealed[8 + 4 + 8 + 1] ^= 0x40;
  EXPECT_THROW((void)unseal(sealed), CapsuleError);
}

TEST(CapsuleFile, WriteReadRoundTrip) {
  const std::string path = "capsule_test_roundtrip.fx8caps";
  const std::vector<std::uint8_t> sealed = seal({9, 8, 7});
  write_file(path, sealed);
  EXPECT_EQ(read_file(path), sealed);
  std::remove(path.c_str());
}

TEST(CapsuleFile, MissingFileThrows) {
  EXPECT_THROW((void)read_file("no-such-dir/no-such-capsule.fx8caps"),
               CapsuleError);
  EXPECT_THROW(write_file("no-such-dir/no-such-capsule.fx8caps", {}),
               CapsuleError);
}

}  // namespace
}  // namespace repro::capsule
