#include "base/expect.hpp"

#include <gtest/gtest.h>

#include <string>

namespace repro {
namespace {

TEST(Expect, PassingCheckIsSilent) {
  EXPECT_NO_THROW(REPRO_EXPECT(1 + 1 == 2, "arithmetic works"));
  EXPECT_NO_THROW(REPRO_ENSURE(true, "trivially true"));
}

TEST(Expect, FailingCheckThrowsWithContext) {
  try {
    REPRO_EXPECT(false, "the message");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("expect_test.cpp"), std::string::npos);
  }
}

TEST(Expect, EnsureReportsInvariant) {
  try {
    REPRO_ENSURE(false, "broken invariant");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("invariant"), std::string::npos);
  }
}

}  // namespace
}  // namespace repro
