#include "base/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace repro {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a.next() == b.next() ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.uniform01();
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformBoundRespected) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Rng, UniformBoundZeroReturnsZero) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform(0), 0u);
}

TEST(Rng, UniformCoversAllResidues) {
  Rng rng(5);
  std::array<int, 8> seen{};
  for (int i = 0; i < 1000; ++i) {
    ++seen[rng.uniform(8)];
  }
  for (const int count : seen) {
    EXPECT_GT(count, 60);  // ~125 expected per bucket.
  }
}

TEST(Rng, UniformInInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.uniform_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInRejectsBadRange) {
  Rng rng(9);
  EXPECT_THROW((void)rng.uniform_in(3, -3), ContractViolation);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.exponential(100.0);
  }
  EXPECT_NEAR(sum / kN, 100.0, 5.0);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(19);
  EXPECT_THROW((void)rng.exponential(0.0), ContractViolation);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, DiscretePicksByWeight) {
  Rng rng(29);
  const std::vector<double> weights = {0.0, 1.0, 3.0};
  std::array<int, 3> counts{};
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) {
    ++counts[rng.discrete(weights)];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / kN, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kN, 0.75, 0.02);
}

TEST(Rng, DiscreteRejectsDegenerateWeights) {
  Rng rng(29);
  const std::vector<double> zero = {0.0, 0.0};
  const std::vector<double> neg = {1.0, -0.5};
  const std::vector<double> empty;
  EXPECT_THROW((void)rng.discrete(zero), ContractViolation);
  EXPECT_THROW((void)rng.discrete(neg), ContractViolation);
  EXPECT_THROW((void)rng.discrete(empty), ContractViolation);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += parent.next() == child.next() ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(Mix64, StatelessAndStable) {
  EXPECT_EQ(mix64(1234), mix64(1234));
  EXPECT_NE(mix64(1234), mix64(1235));
}

TEST(Splitmix64, AdvancesState) {
  std::uint64_t s = 0;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace repro
