#include "base/ring_buffer.hpp"

#include <gtest/gtest.h>

namespace repro {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> buf(4);
  EXPECT_TRUE(buf.empty());
  EXPECT_FALSE(buf.full());
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.capacity(), 4u);
}

TEST(RingBuffer, RejectsZeroCapacity) {
  EXPECT_THROW(RingBuffer<int>(0), ContractViolation);
}

TEST(RingBuffer, FillsInOrder) {
  RingBuffer<int> buf(3);
  buf.push(1);
  buf.push(2);
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.at(0), 1);
  EXPECT_EQ(buf.at(1), 2);
}

TEST(RingBuffer, OverwritesOldest) {
  RingBuffer<int> buf(3);
  for (int i = 1; i <= 5; ++i) {
    buf.push(i);
  }
  EXPECT_TRUE(buf.full());
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.at(0), 3);
  EXPECT_EQ(buf.at(1), 4);
  EXPECT_EQ(buf.at(2), 5);
}

TEST(RingBuffer, AtOutOfRangeThrows) {
  RingBuffer<int> buf(3);
  buf.push(1);
  EXPECT_THROW((void)buf.at(1), ContractViolation);
}

TEST(RingBuffer, SnapshotOldestFirst) {
  RingBuffer<int> buf(4);
  for (int i = 0; i < 6; ++i) {
    buf.push(i);
  }
  const std::vector<int> snap = buf.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front(), 2);
  EXPECT_EQ(snap.back(), 5);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> buf(2);
  buf.push(1);
  buf.push(2);
  buf.clear();
  EXPECT_TRUE(buf.empty());
  buf.push(9);
  EXPECT_EQ(buf.at(0), 9);
}

TEST(RingBuffer, Exactly512DeepLikeTheDas9100) {
  RingBuffer<int> buf(512);
  for (int i = 0; i < 1000; ++i) {
    buf.push(i);
  }
  EXPECT_EQ(buf.size(), 512u);
  EXPECT_EQ(buf.at(0), 488);
  EXPECT_EQ(buf.at(511), 999);
}

}  // namespace
}  // namespace repro
