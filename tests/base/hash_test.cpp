// base::fnv1a and base::fasthash: the two hash families behind the
// capsule envelope digests (fnv1a) and the result cache's content keys
// (fasthash). Both are pinned to their published reference vectors so a
// refactor that silently changes either would orphan every sealed
// capsule / cached result — that must show up here, not in the field.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "base/fasthash.hpp"
#include "base/fnv1a.hpp"

namespace repro::base {
namespace {

std::uint64_t fnv1a_str(const std::string& s) {
  return fnv1a(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

TEST(Fnv1a, MatchesPublishedVectors) {
  // The canonical FNV-1a 64 vectors (Fowler/Noll/Vo test suite).
  EXPECT_EQ(fnv1a_str(""), 0xcbf29ce484222325ULL);  // = the offset basis
  EXPECT_EQ(fnv1a_str("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a_str("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a, ChainsThroughTheAccumulator) {
  // Hashing "foobar" in one call equals hashing "foo" then continuing
  // with "bar" — the property capsule::Io::digester() relies on when it
  // folds each primitive into a running digest.
  const std::string a = "foo";
  const std::string b = "bar";
  const std::uint64_t partial =
      fnv1a(reinterpret_cast<const std::uint8_t*>(a.data()), a.size());
  const std::uint64_t chained = fnv1a(
      reinterpret_cast<const std::uint8_t*>(b.data()), b.size(), partial);
  EXPECT_EQ(chained, fnv1a_str("foobar"));
}

TEST(Fnv1a, IsConstexpr) {
  constexpr std::uint8_t bytes[] = {'a'};
  constexpr std::uint64_t at_compile_time = fnv1a(bytes, 1);
  static_assert(at_compile_time == 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(at_compile_time, 0xaf63dc4c8601ec8cULL);
}

TEST(Fasthash, MatchesXxh64ReferenceVectors) {
  // Official XXH64 vectors: the implementation must BE XXH64, not
  // merely something hash-shaped, so stored keys survive rewrites.
  EXPECT_EQ(fasthash("", 0, 0), 0xEF46DB3751D8E999ULL);
  EXPECT_EQ(fasthash("a", 1, 0), 0xD24EC4F1A98C6E5BULL);
  EXPECT_EQ(fasthash("abc", 3, 0), 0x44BC2CF5AD770999ULL);
}

TEST(Fasthash, SeedChangesTheHash) {
  // The store's code salt rides in the seed, so a bumped salt must move
  // every key; any two distinct seeds must disagree.
  const char* data = "the same bytes";
  const std::size_t n = std::strlen(data);
  EXPECT_NE(fasthash(data, n, 0), fasthash(data, n, 1));
  EXPECT_NE(fasthash(data, n, 0x0000010000100001ULL), fasthash(data, n, 0));
}

TEST(Fasthash, EveryLengthHashesDistinctly) {
  // Sweep 0..96 bytes of a fixed pattern: crosses the 32-byte stripe
  // boundary, the 8/4/1-byte tail ladders, and never collides. A broken
  // tail loop (the classic port bug) fails here immediately.
  std::vector<std::uint8_t> buf(96);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::uint8_t>(i * 131 + 17);
  }
  std::set<std::uint64_t> seen;
  for (std::size_t n = 0; n <= buf.size(); ++n) {
    EXPECT_TRUE(seen.insert(fasthash(buf.data(), n, 7)).second)
        << "collision at length " << n;
  }
}

TEST(Fasthash, SingleBitFlipAvalanches) {
  std::vector<std::uint8_t> buf(40, 0xA5);
  const std::uint64_t before = fasthash(buf.data(), buf.size(), 0);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] ^= 1;
    EXPECT_NE(fasthash(buf.data(), buf.size(), 0), before)
        << "byte " << i << " did not affect the hash";
    buf[i] ^= 1;
  }
  EXPECT_EQ(fasthash(buf.data(), buf.size(), 0), before);
}

TEST(Fasthash, U64ConvenienceMatchesByteForm) {
  const std::uint64_t value = 0x0123456789ABCDEFULL;
  std::uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  EXPECT_EQ(fasthash64(value, 42), fasthash(bytes, 8, 42));
  EXPECT_NE(fasthash64(value, 42), fasthash64(value, 43));
  EXPECT_NE(fasthash64(value, 42), fasthash64(value + 1, 42));
}

}  // namespace
}  // namespace repro::base
