// End-to-end over the real catalog at --quick scale: the shared cache
// runs each experiment at most once however many artifacts read it, and
// the paper-headline artifacts land inside their tolerance bands.
//
// Everything here shares ONE quick-scale cache (the same population CI's
// fx8bench --quick run gates on), so the suite costs one study + one
// transition study, not one per test.
#include <gtest/gtest.h>

#include <cmath>

#include "artifacts/registry.hpp"
#include "artifacts/runner.hpp"

namespace repro::artifacts {
namespace {

class QuickPipeline : public ::testing::Test {
 protected:
  static Inputs& inputs() {
    static Inputs shared(/*quick=*/true);
    return shared;
  }

  static const ArtifactResult& result(const std::string& id) {
    static std::vector<ArtifactResult> cache;
    for (const ArtifactResult& cached : cache) {
      if (cached.id == id) {
        return cached;
      }
    }
    const ArtifactDef* def = find_artifact(id);
    EXPECT_NE(def, nullptr) << id;
    cache.push_back(run_artifact(*def, inputs()));
    return cache.back();
  }

  static const Check* find_check(const ArtifactResult& res,
                                 const std::string& name) {
    for (const Check& check : res.checks) {
      if (check.name == name) {
        return &check;
      }
    }
    return nullptr;
  }
};

TEST_F(QuickPipeline, Table2HeadlineMeasuresWithinTolerance) {
  const ArtifactResult& table2 = result("table2");
  ASSERT_EQ(table2.status, ArtifactStatus::kOk) << table2.error;
  // The four headline measures of the study (paper: Cw = 0.35,
  // c(8) = 0.28, c(8|c) = 0.93, Pc = 7.66).
  for (const char* name : {"cw", "c8", "c8_given_c", "pc"}) {
    const Check* check = find_check(table2, name);
    ASSERT_NE(check, nullptr) << name;
    EXPECT_TRUE(check->pass) << name << " = " << check->measured
                             << " outside [" << check->lo << ", "
                             << check->hi << "]";
  }
}

TEST_F(QuickPipeline, Fig12MissRateRisesLikeThePaper) {
  const ArtifactResult& fig12 = result("fig12");
  ASSERT_EQ(fig12.status, ArtifactStatus::kOk) << fig12.error;
  const Check* ratio = find_check(fig12, "rise_ratio");
  ASSERT_NE(ratio, nullptr);
  EXPECT_TRUE(ratio->pass) << "rise_ratio = " << ratio->measured;
  EXPECT_GT(ratio->measured, 1.4);  // the paper's "greater than triple"
}

TEST_F(QuickPipeline, StudyArtifactsRenderNonEmptyText) {
  for (const char* id : {"table2", "fig3", "fig12"}) {
    const ArtifactResult& res = result(id);
    EXPECT_FALSE(res.text.empty()) << id;
    EXPECT_NE(res.status, ArtifactStatus::kError) << id << ": " << res.error;
  }
}

TEST_F(QuickPipeline, SharedExperimentsRunAtMostOnce) {
  // Force several study readers and both transition readers.
  result("table2");
  result("fig3");
  result("fig4");
  result("fig12");
  result("fig6");
  result("fig7");
  const RunCounts& counts = inputs().run_counts();
  EXPECT_EQ(counts.study_runs, 1);
  EXPECT_EQ(counts.transition_runs, 1);
  EXPECT_NE(inputs().study_if_run(), nullptr);
}

TEST_F(QuickPipeline, StudyEngineReportsFastForwardActivity) {
  result("table2");  // ensures the study ran
  const core::StudyResult* study = inputs().study_if_run();
  ASSERT_NE(study, nullptr);
  // The event-horizon fast-forward is on by default; a study this size
  // must have taken jumps, and accounting must cover real cycles.
  EXPECT_GT(study->ff.jumps, 0u);
  EXPECT_GT(study->ff.skipped_cycles, 0u);
}

TEST_F(QuickPipeline, QuickModeScalesPrivatePopulations) {
  EXPECT_TRUE(inputs().quick());
  EXPECT_EQ(inputs().scaled(10, 4), 4u);
  Inputs full(/*quick=*/false);
  EXPECT_EQ(full.scaled(10, 4), 10u);
  EXPECT_EQ(full.study_config().samples_per_session, 12u);
  EXPECT_LT(inputs().study_config().samples_per_session, 12u);
}

}  // namespace
}  // namespace repro::artifacts
