// The persistent cache end-to-end through the real pipeline: a cold
// Inputs populates the store, a warm Inputs over the same directory
// reproduces the identical artifacts without executing a single engine,
// and every corruption or config change degrades to recompute — the
// warm results must be indistinguishable from the cold ones.
//
// Artifacts here are the cheap shared-experiment readers (table2 reads
// the study, fig6 the transition study) so the whole file costs one
// quick study + one quick transition run.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "artifacts/registry.hpp"
#include "artifacts/result_store.hpp"
#include "artifacts/runner.hpp"

namespace repro::artifacts {
namespace {

namespace fs = std::filesystem;

void expect_same_artifact(const ArtifactResult& cold,
                          const ArtifactResult& warm) {
  EXPECT_EQ(cold.id, warm.id);
  EXPECT_EQ(cold.status, warm.status);
  EXPECT_EQ(cold.error, warm.error);
  EXPECT_EQ(cold.text, warm.text) << cold.id;
  ASSERT_EQ(cold.metrics.size(), warm.metrics.size()) << cold.id;
  for (std::size_t i = 0; i < cold.metrics.size(); ++i) {
    EXPECT_EQ(cold.metrics[i].name, warm.metrics[i].name);
    EXPECT_EQ(cold.metrics[i].value, warm.metrics[i].value)
        << cold.id << ":" << cold.metrics[i].name;
  }
  ASSERT_EQ(cold.checks.size(), warm.checks.size()) << cold.id;
  for (std::size_t i = 0; i < cold.checks.size(); ++i) {
    EXPECT_EQ(cold.checks[i].name, warm.checks[i].name);
    EXPECT_EQ(cold.checks[i].measured, warm.checks[i].measured);
    EXPECT_EQ(cold.checks[i].pass, warm.checks[i].pass);
  }
}

class CachePipeline : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("cache_pipeline_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  ArtifactResult run(Inputs& inputs, const std::string& id) {
    const ArtifactDef* def = find_artifact(id);
    EXPECT_NE(def, nullptr) << id;
    return run_artifact(*def, inputs);
  }

  fs::path dir_;
};

TEST_F(CachePipeline, WarmRunReproducesColdWithoutExecutingEngines) {
  Inputs cold(/*quick=*/true, dir_.string());
  const ArtifactResult cold_table2 = run(cold, "table2");
  const ArtifactResult cold_fig6 = run(cold, "fig6");
  EXPECT_EQ(cold.run_counts().study_runs, 1);
  EXPECT_EQ(cold.run_counts().transition_runs, 1);
  ASSERT_NE(cold.store(), nullptr);
  EXPECT_GT(cold.store()->stats().puts, 0u);

  Inputs warm(/*quick=*/true, dir_.string());
  const ArtifactResult warm_table2 = run(warm, "table2");
  const ArtifactResult warm_fig6 = run(warm, "fig6");
  // Nothing executed: both artifacts came straight off disk.
  EXPECT_EQ(warm.run_counts().study_runs, 0);
  EXPECT_EQ(warm.run_counts().transition_runs, 0);
  EXPECT_EQ(warm.run_counts().private_runs, 0);
  EXPECT_GE(warm.store()->stats().hits, 2u);
  EXPECT_EQ(warm.store()->stats().puts, 0u);
  expect_same_artifact(cold_table2, warm_table2);
  expect_same_artifact(cold_fig6, warm_fig6);
}

TEST_F(CachePipeline, WarmStudyForReportMatchesColdStudy) {
  Inputs cold(/*quick=*/true, dir_.string());
  run(cold, "table2");
  ASSERT_NE(cold.study_for_report(), nullptr);
  const auto cold_blob = encode_result(*cold.study_for_report());

  Inputs warm(/*quick=*/true, dir_.string());
  run(warm, "table2");
  // The artifact itself was satisfied from the artifact blob, so the
  // study never ran — but the report path still reconstructs it from
  // the store, bit-identical to the cold one.
  EXPECT_EQ(warm.run_counts().study_runs, 0);
  EXPECT_EQ(warm.study_if_run(), nullptr);
  const core::StudyResult* restored = warm.study_for_report();
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(encode_result(*restored), cold_blob);
}

TEST_F(CachePipeline, TamperedArtifactBlobRecomputesIdentically) {
  Inputs cold(/*quick=*/true, dir_.string());
  const ArtifactResult cold_fig6 = run(cold, "fig6");

  // Tamper with the cached fig6 artifact blob (flip a byte mid-payload).
  const std::string path =
      cold.store()->object_path(cold.artifact_key("fig6"));
  ASSERT_TRUE(fs::exists(path));
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(40);
    char byte;
    file.read(&byte, 1);
    file.seekp(40);
    byte = static_cast<char>(byte ^ 0xFF);
    file.write(&byte, 1);
  }

  Inputs warm(/*quick=*/true, dir_.string());
  const ArtifactResult warm_fig6 = run(warm, "fig6");
  // The corrupt blob forced a real recompute (the shared transition blob
  // is still good, so only the artifact render re-ran)...
  EXPECT_GE(warm.store()->stats().corrupt_misses, 1u);
  // ...and the recomputed result is byte-for-byte the cold one.
  expect_same_artifact(cold_fig6, warm_fig6);
  // The recompute healed the store for next time.
  EXPECT_GT(warm.store()->stats().puts, 0u);
}

TEST_F(CachePipeline, QuickAndFullPopulationsNeverShareEntries) {
  Inputs quick(/*quick=*/true, dir_.string());
  Inputs full(/*quick=*/false, dir_.string());
  EXPECT_NE(quick.artifact_key("table2"), full.artifact_key("table2"));
  EXPECT_NE(study_cache_key(quick.study_config()),
            study_cache_key(full.study_config()));
}

TEST_F(CachePipeline, DisabledCacheKeepsTheOldBehaviour) {
  Inputs inputs(/*quick=*/true);  // No cache_dir: in-process memo only.
  EXPECT_EQ(inputs.store(), nullptr);
  run(inputs, "fig6");
  EXPECT_EQ(inputs.run_counts().transition_runs, 1);
  EXPECT_FALSE(fs::exists(dir_));  // Nothing written anywhere.
}

}  // namespace
}  // namespace repro::artifacts
