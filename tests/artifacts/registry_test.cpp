// Registry completeness: every artifact of the paper is registered.
//
// The paper's reproducible surface is Tables 1-4, Figures 3-14 and
// Appendices A-B (EXPERIMENTS.md); the registry additionally carries the
// design ablations and the §6 extensions. A missing registration here
// means fx8bench silently stopped reproducing part of the paper.
#include "artifacts/registry.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace repro::artifacts {
namespace {

std::set<std::string> catalog_ids() {
  std::set<std::string> ids;
  for (const ArtifactDef& def : catalog()) {
    ids.insert(def.id);
  }
  return ids;
}

TEST(Registry, CoversThePaperCatalog) {
  const std::set<std::string> ids = catalog_ids();
  const std::vector<std::string> paper_artifacts = {
      // Tables 1-4.
      "table1", "table2", "table3", "table4",
      // Figures 3-14.
      "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
      "fig11", "fig12", "fig13", "fig14",
      // Appendices A and B (B splits into bus-busy and page-fault halves).
      "appendix_a", "appendix_b_busbusy", "appendix_b_pagefault"};
  for (const std::string& id : paper_artifacts) {
    EXPECT_TRUE(ids.count(id)) << "missing paper artifact: " << id;
  }
}

TEST(Registry, CoversTheAblationsAndExtensions) {
  const std::set<std::string> ids = catalog_ids();
  for (const char* id :
       {"ablation_service_order", "ablation_locality",
        "ablation_vector_traffic", "ablation_dispatch", "trace_vs_sampling",
        "scheduling_policy", "width_sweep", "width_scaling",
        "correlation_matrix",
        "detached_artifact", "high_concurrency_captures"}) {
    EXPECT_TRUE(ids.count(id)) << "missing artifact: " << id;
  }
}

TEST(Registry, IdsAreUniqueAndDefsComplete) {
  std::set<std::string> seen;
  for (const ArtifactDef& def : catalog()) {
    EXPECT_TRUE(seen.insert(def.id).second) << "duplicate id: " << def.id;
    EXPECT_FALSE(def.id.empty());
    EXPECT_FALSE(def.paper_ref.empty()) << def.id;
    EXPECT_FALSE(def.title.empty()) << def.id;
    EXPECT_FALSE(def.paper_claim.empty()) << def.id;
    EXPECT_TRUE(static_cast<bool>(def.render)) << def.id;
  }
}

TEST(Registry, CatalogFollowsPaperOrder) {
  // Tables first, then figures in paper order, then appendices; the
  // ablations and extensions trail the paper artifacts.
  const auto& defs = catalog();
  ASSERT_GE(defs.size(), 4u);
  EXPECT_EQ(defs[0].id, "table1");
  EXPECT_EQ(defs[1].id, "table2");
  std::size_t first_ablation = defs.size();
  std::size_t last_paper = 0;
  for (std::size_t i = 0; i < defs.size(); ++i) {
    if (defs[i].kind == ArtifactKind::kAblation ||
        defs[i].kind == ArtifactKind::kExtension) {
      first_ablation = std::min(first_ablation, i);
    } else {
      last_paper = i;
    }
  }
  EXPECT_LT(last_paper, first_ablation);
}

TEST(Registry, FindArtifactResolvesIdsOnly) {
  EXPECT_NE(find_artifact("fig12"), nullptr);
  EXPECT_EQ(find_artifact("fig12")->paper_ref, "Figure 12");
  EXPECT_EQ(find_artifact("no_such_artifact"), nullptr);
  EXPECT_EQ(find_artifact(""), nullptr);
}

TEST(Registry, SuggestsTheNearestIdForTypos) {
  // The --only did-you-mean path: one-edit typos resolve to the
  // intended artifact.
  ASSERT_NE(suggest_artifact("fig99"), nullptr);
  EXPECT_EQ(suggest_artifact("fig99")->id, "fig9");
  EXPECT_EQ(suggest_artifact("tabel2")->id, "table2");
  EXPECT_EQ(suggest_artifact("appendix_c")->id, "appendix_a");
  // Exact ids suggest themselves (distance zero), and even a hopeless
  // input still gets the nearest (never nullptr on a non-empty catalog).
  EXPECT_EQ(suggest_artifact("fig12")->id, "fig12");
  EXPECT_NE(suggest_artifact("zzzzzzzzzz"), nullptr);
}

TEST(Registry, KindNamesSerialize) {
  EXPECT_STREQ(to_string(ArtifactKind::kTable), "table");
  EXPECT_STREQ(to_string(ArtifactKind::kFigure), "figure");
  EXPECT_STREQ(to_string(ArtifactKind::kAppendix), "appendix");
  EXPECT_STREQ(to_string(ArtifactKind::kAblation), "ablation");
  EXPECT_STREQ(to_string(ArtifactKind::kExtension), "extension");
  EXPECT_STREQ(to_string(ArtifactStatus::kOk), "ok");
  EXPECT_STREQ(to_string(ArtifactStatus::kToleranceFailed),
               "tolerance_failed");
  EXPECT_STREQ(to_string(ArtifactStatus::kError), "error");
}

}  // namespace
}  // namespace repro::artifacts
