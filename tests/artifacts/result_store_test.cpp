// ResultStore robustness: the store may only ever MISS, never return a
// wrong or stale answer. Every corruption in the matrix — truncation,
// tampering, version skew, foreign blobs, stale code salt, lost or
// mangled bloom sidecars — must degrade to a clean miss that the caller
// resolves by recomputing.
#include "artifacts/result_store.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "base/capsule.hpp"
#include "core/study.hpp"
#include "core/transition.hpp"
#include "workload/presets.hpp"

namespace repro::artifacts {
namespace {

namespace fs = std::filesystem;

class ResultStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("result_store_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static std::vector<std::uint8_t> payload(std::initializer_list<int> bytes) {
    std::vector<std::uint8_t> out;
    for (const int b : bytes) {
      out.push_back(static_cast<std::uint8_t>(b));
    }
    return out;
  }

  /// Overwrite the blob file for `key` with raw bytes (bypassing seal).
  void scribble(const ResultStore& store, std::uint64_t key,
                const std::string& bytes) {
    std::ofstream out(store.object_path(key), std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  fs::path dir_;
};

TEST_F(ResultStoreTest, PutThenGetRoundTrips) {
  ResultStore store(dir_.string());
  const auto body = payload({1, 2, 3, 4, 5});
  store.put(0xABCDEF01, body);
  const auto got = store.get(0xABCDEF01);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, body);
  EXPECT_EQ(store.stats().puts, 1u);
  EXPECT_EQ(store.stats().hits, 1u);
  EXPECT_EQ(store.stats().misses, 0u);
  EXPECT_GT(store.stats().bytes_written, 0u);
  EXPECT_GT(store.stats().bytes_read, 0u);
}

TEST_F(ResultStoreTest, AbsentKeyIsABloomSkippedMiss) {
  ResultStore store(dir_.string());
  EXPECT_FALSE(store.get(0x1111).has_value());
  EXPECT_EQ(store.stats().misses, 1u);
  EXPECT_EQ(store.stats().bloom_skips, 1u);
  EXPECT_EQ(store.stats().bytes_read, 0u);  // Never touched the disk.
}

TEST_F(ResultStoreTest, ResultsSurviveReopen) {
  const auto body = payload({9, 8, 7});
  {
    ResultStore store(dir_.string());
    store.put(0x2222, body);
  }
  ResultStore reopened(dir_.string());
  const auto got = reopened.get(0x2222);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, body);
}

TEST_F(ResultStoreTest, TruncatedBlobIsACleanMissAndIsRemoved) {
  ResultStore store(dir_.string());
  store.put(0x3333, payload({1, 2, 3, 4, 5, 6, 7, 8}));
  // Chop the sealed file in half: the envelope size/digest check fails.
  const std::string path = store.object_path(0x3333);
  const auto size = fs::file_size(path);
  fs::resize_file(path, size / 2);
  EXPECT_FALSE(store.get(0x3333).has_value());
  EXPECT_EQ(store.stats().corrupt_misses, 1u);
  EXPECT_FALSE(fs::exists(path)) << "corrupt blob should be deleted";
  // And the key now misses like any absent key.
  EXPECT_FALSE(store.get(0x3333).has_value());
}

TEST_F(ResultStoreTest, TamperedBlobIsACleanMiss) {
  ResultStore store(dir_.string());
  store.put(0x4444, payload({10, 20, 30, 40}));
  const std::string path = store.object_path(0x4444);
  // Flip one payload byte in place: the envelope digest catches it.
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(-3, std::ios::end);
  char byte;
  file.read(&byte, 1);
  file.seekp(-3, std::ios::end);
  byte = static_cast<char>(byte ^ 0x5A);
  file.write(&byte, 1);
  file.close();
  EXPECT_FALSE(store.get(0x4444).has_value());
  EXPECT_EQ(store.stats().corrupt_misses, 1u);
}

TEST_F(ResultStoreTest, GarbageBlobIsACleanMiss) {
  ResultStore store(dir_.string());
  store.put(0x5555, payload({1}));
  scribble(store, 0x5555, "not a capsule at all");
  EXPECT_FALSE(store.get(0x5555).has_value());
  EXPECT_EQ(store.stats().corrupt_misses, 1u);
}

TEST_F(ResultStoreTest, ForeignKeyEchoIsACleanMiss) {
  // A blob renamed (or hash-collided) onto another key's path fails the
  // inner key-echo check even though its envelope is perfectly sealed.
  ResultStore store(dir_.string());
  store.put(0x6666, payload({42}));
  fs::copy_file(store.object_path(0x6666), store.object_path(0x7777));
  // Insert 0x7777 into the bloom via a put, then swap the foreign blob in.
  store.put(0x7777, payload({43}));
  fs::copy_file(store.object_path(0x6666), store.object_path(0x7777),
                fs::copy_options::overwrite_existing);
  EXPECT_FALSE(store.get(0x7777).has_value());
  EXPECT_EQ(store.stats().corrupt_misses, 1u);
  // The original is untouched.
  EXPECT_TRUE(store.get(0x6666).has_value());
}

TEST_F(ResultStoreTest, WrongEnvelopeVersionIsACleanMiss) {
  // Seal a valid-looking blob, then bump the envelope's format-version
  // field (byte 8, after the 8-byte magic): unseal must reject it.
  ResultStore store(dir_.string());
  store.put(0x8888, payload({1, 2, 3}));
  const std::string path = store.object_path(0x8888);
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(8);
  const char bumped = 99;
  file.write(&bumped, 1);
  file.close();
  EXPECT_FALSE(store.get(0x8888).has_value());
  EXPECT_EQ(store.stats().corrupt_misses, 1u);
}

TEST_F(ResultStoreTest, LostBloomSidecarIsRebuiltFromObjects) {
  const auto body = payload({5, 5, 5});
  {
    ResultStore store(dir_.string());
    store.put(0x9999, body);
  }
  fs::remove(dir_ / "bloom.bin");
  ResultStore reopened(dir_.string());
  const auto got = reopened.get(0x9999);  // Bloom must not skip it.
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, body);
  EXPECT_EQ(reopened.stats().bloom_skips, 0u);
}

TEST_F(ResultStoreTest, CorruptBloomSidecarIsRebuiltFromObjects) {
  const auto body = payload({6, 6});
  {
    ResultStore store(dir_.string());
    store.put(0xAAAA, body);
  }
  std::ofstream(dir_ / "bloom.bin", std::ios::binary) << "garbage";
  ResultStore reopened(dir_.string());
  ASSERT_TRUE(reopened.get(0xAAAA).has_value());
}

TEST_F(ResultStoreTest, UnwritableDirectoryCountsPutErrors) {
  ResultStore store(dir_.string());
  fs::remove_all(dir_ / "objects");  // Yank the rug out from under put().
  store.put(0xBBBB, payload({1}));
  EXPECT_EQ(store.stats().puts, 0u);
  EXPECT_GE(store.stats().put_errors, 1u);
  // The blob write failed before the sidecar save was even attempted.
  EXPECT_EQ(store.stats().bloom_save_errors, 0u);
}

TEST_F(ResultStoreTest, BloomSidecarFailureIsNotAPutError) {
  ResultStore store(dir_.string());
  store.put(0xCCC0, payload({7}));
  EXPECT_EQ(store.stats().bloom_save_errors, 0u);
  // Squat a non-empty directory on the sidecar's temp path: the blob
  // itself still lands, only the bloom save fails. This used to be
  // charged to put_errors — double-counting every sidecar failure
  // against puts that had in fact succeeded.
  fs::create_directories(dir_ / "bloom.bin.tmp" / "squat");
  store.put(0xCCCC, payload({1, 2}));
  EXPECT_EQ(store.stats().puts, 2u);
  EXPECT_EQ(store.stats().put_errors, 0u);
  EXPECT_GE(store.stats().bloom_save_errors, 1u);
  // The freshly put blob is still perfectly readable.
  EXPECT_TRUE(store.get(0xCCCC).has_value());
}

// --- Key derivation ---------------------------------------------------

TEST(CacheKeys, StaleCodeSaltChangesEveryKey) {
  const core::StudyConfig config;
  EXPECT_NE(study_cache_key(config, kCodeSalt),
            study_cache_key(config, kCodeSalt + 1));
  const core::TransitionConfig transition;
  EXPECT_NE(transition_cache_key(transition, kCodeSalt),
            transition_cache_key(transition, kCodeSalt + 1));
  EXPECT_NE(artifact_cache_key("fig3", config, transition, false, kCodeSalt),
            artifact_cache_key("fig3", config, transition, false,
                               kCodeSalt + 1));
}

TEST(CacheKeys, EveryStudyConfigFieldChangesTheKey) {
  const core::StudyConfig base;
  const std::uint64_t key = study_cache_key(base);
  // One mutation per field — including the perf-only knobs that provably
  // do not change results (threads, fast_forward, rig_batch, ...): the
  // cache keys conservatively on the WHOLE config.
  const auto mutated = [&](auto&& mutate) {
    core::StudyConfig config = base;
    mutate(config);
    return study_cache_key(config);
  };
  EXPECT_NE(key, mutated([](auto& c) { c.samples_per_session += 1; }));
  EXPECT_NE(key, mutated([](auto& c) { c.warmup_cycles += 1; }));
  EXPECT_NE(key, mutated([](auto& c) { c.seed += 1; }));
  EXPECT_NE(key, mutated([](auto& c) { c.threads += 1; }));
  EXPECT_NE(key, mutated([](auto& c) { c.fast_forward = !c.fast_forward; }));
  EXPECT_NE(key, mutated([](auto& c) { c.replicates_per_session += 1; }));
  EXPECT_NE(key, mutated([](auto& c) { c.rig_batch += 1; }));
  EXPECT_NE(key, mutated([](auto& c) { c.checkpoint_every_samples += 1; }));
  EXPECT_NE(key, mutated([](auto& c) { c.sampling.interval_cycles += 1; }));
  EXPECT_NE(key,
            mutated([](auto& c) { c.sampling.snapshots_per_sample += 1; }));
  EXPECT_NE(key, mutated([](auto& c) { c.sampling.buffer_depth += 1; }));
  EXPECT_NE(key, mutated([](auto& c) {
              c.sampling.fast_forward = !c.sampling.fast_forward;
            }));
  EXPECT_NE(key, mutated([](auto& c) { c.system.machine.n_ips += 1; }));
  EXPECT_NE(key, mutated([](auto& c) { c.system.machine.seed += 1; }));
  // The topology block: every field keys (a width-16 run must never
  // serve a width-8 blob and vice versa).
  EXPECT_NE(key,
            mutated([](auto& c) { c.system.machine.topology.n_ces += 1; }));
  EXPECT_NE(key, mutated(
                     [](auto& c) { c.system.machine.topology.n_clusters += 1; }));
  EXPECT_NE(key, mutated([](auto& c) {
              c.system.machine.topology.cache_banks += 1;
            }));
  EXPECT_NE(key, mutated([](auto& c) {
              c.system.machine.topology.mem_buses += 1;
            }));
  EXPECT_NE(key, mutated([](auto& c) { c.system.vm.fault_service_cycles += 1; }));
  EXPECT_NE(key, mutated([](auto& c) {
              c.system.scheduling = os::SchedulingPolicy::kConcurrentFirst;
            }));
  // And the identity mutation does NOT change the key (determinism).
  EXPECT_EQ(key, mutated([](auto&) {}));
}

TEST(CacheKeys, EveryContentionMixFieldChangesTheStudyKey) {
  // The v3 keys fold the session mixes: a cached blob computed for one
  // contention configuration must never be served for another. One
  // mutation per new WorkloadMix field.
  const core::StudyConfig config;
  const std::vector<workload::WorkloadMix> mixes = {
      workload::lock_contention_mix(workload::LockType::kTicket)};
  const std::uint64_t key = study_cache_key(config, mixes);
  const auto mutated = [&](auto&& mutate) {
    auto copy = mixes;
    mutate(copy[0]);
    return study_cache_key(config, copy);
  };
  EXPECT_NE(key, mutated([](auto& m) { m.contention_job_fraction -= 0.5; }));
  EXPECT_NE(key, mutated([](auto& m) { m.contention.rcu_fraction += 0.5; }));
  EXPECT_NE(key, mutated([](auto& m) {
              m.contention.lock.lock = workload::LockType::kMcs;
            }));
  EXPECT_NE(key, mutated([](auto& m) { m.contention.lock.contenders -= 1; }));
  EXPECT_NE(key, mutated([](auto& m) { m.contention.lock.min_rounds += 1; }));
  EXPECT_NE(key, mutated([](auto& m) { m.contention.lock.max_rounds += 1; }));
  EXPECT_NE(key,
            mutated([](auto& m) { m.contention.lock.critical_steps += 1; }));
  EXPECT_NE(key,
            mutated([](auto& m) { m.contention.lock.parallel_steps += 1; }));
  EXPECT_NE(key, mutated([](auto& m) {
              m.contention.lock.ticket_handoff_steps += 1;
            }));
  EXPECT_NE(key, mutated([](auto& m) { m.contention.rcu.readers -= 1; }));
  EXPECT_NE(key, mutated([](auto& m) { m.contention.rcu.min_rounds += 1; }));
  EXPECT_NE(key, mutated([](auto& m) { m.contention.rcu.max_rounds += 1; }));
  EXPECT_NE(key, mutated([](auto& m) { m.contention.rcu.reader_steps += 1; }));
  EXPECT_NE(key, mutated([](auto& m) { m.contention.rcu.writer_steps += 1; }));
  EXPECT_NE(key, mutated([](auto& m) { m.contention.rcu.writer_every += 1; }));
  // The identity mutation keeps the key; the mix COUNT keys as well.
  EXPECT_EQ(key, mutated([](auto&) {}));
  const std::vector<workload::WorkloadMix> two = {mixes[0], mixes[0]};
  EXPECT_NE(key, study_cache_key(config, two));
  // The default overload is exactly the session-preset overload.
  const auto presets = workload::session_presets();
  EXPECT_EQ(study_cache_key(config), study_cache_key(config, presets));
}

TEST(CacheKeys, EveryTransitionConfigFieldChangesTheKey) {
  const core::TransitionConfig base;
  const std::uint64_t key = transition_cache_key(base);
  const auto mutated = [&](auto&& mutate) {
    core::TransitionConfig config = base;
    mutate(config);
    return transition_cache_key(config);
  };
  EXPECT_NE(key, mutated([](auto& c) { c.captures += 1; }));
  EXPECT_NE(key, mutated([](auto& c) { c.capture_timeout += 1; }));
  EXPECT_NE(key, mutated([](auto& c) { c.warmup_cycles += 1; }));
  EXPECT_NE(key, mutated([](auto& c) { c.seed += 1; }));
  EXPECT_NE(key, mutated([](auto& c) {
              c.checkpoint_between_captures = !c.checkpoint_between_captures;
            }));
  EXPECT_NE(key, mutated([](auto& c) { c.sampling.buffer_depth += 1; }));
  EXPECT_NE(key, mutated([](auto& c) { c.system.machine.seed += 1; }));
  EXPECT_EQ(key, mutated([](auto&) {}));
}

TEST(CacheKeys, ArtifactKeysSeparateIdQuickAndKind) {
  const core::StudyConfig study;
  const core::TransitionConfig transition;
  const std::uint64_t fig3 =
      artifact_cache_key("fig3", study, transition, false);
  EXPECT_NE(fig3, artifact_cache_key("fig4", study, transition, false));
  EXPECT_NE(fig3, artifact_cache_key("fig3", study, transition, true));
  // Different result kinds never share a key even over the same config
  // (the kind tag is hashed in).
  EXPECT_NE(study_cache_key(study), fig3);
  EXPECT_NE(study_cache_key(study), transition_cache_key(transition));
}

// --- Result blob encode/decode ----------------------------------------

TEST(ResultBlobs, TransitionResultRoundTrips) {
  core::TransitionResult result;
  result.state_counts = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  result.processor_counts = {10, 20, 30, 40, 50, 60, 70, 80};
  result.captures_completed = 40;
  result.captures_timed_out = 2;
  const auto blob = encode_result(result);
  const auto back = decode_result<core::TransitionResult>(blob);
  EXPECT_EQ(back.state_counts, result.state_counts);
  EXPECT_EQ(back.processor_counts, result.processor_counts);
  EXPECT_EQ(back.captures_completed, result.captures_completed);
  EXPECT_EQ(back.captures_timed_out, result.captures_timed_out);
}

TEST(ResultBlobs, TrailingBytesAreAShapeMismatch) {
  core::TransitionResult result;
  auto blob = encode_result(result);
  blob.push_back(0);  // One stray byte: the walk must not silently pass.
  EXPECT_THROW(static_cast<void>(decode_result<core::TransitionResult>(blob)),
               capsule::CapsuleError);
}

TEST(ResultBlobs, ShortPayloadIsAShapeMismatch) {
  core::TransitionResult result;
  auto blob = encode_result(result);
  blob.resize(blob.size() / 2);
  EXPECT_THROW(static_cast<void>(decode_result<core::TransitionResult>(blob)),
               capsule::CapsuleError);
}

}  // namespace
}  // namespace repro::artifacts
