// The fx8bench JSON document validates against its schema
// (docs/benchmarks.md): required top-level keys, per-artifact fields,
// check records, and null-for-NaN.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "artifacts/runner.hpp"

namespace repro::artifacts {
namespace {

RunReport synthetic_report() {
  RunReport report;
  ArtifactResult ok;
  ok.id = "fig12";  // a real catalog id, so def metadata joins in
  ok.status = ArtifactStatus::kOk;
  ok.text = "body\n";
  ok.metrics.push_back({"missrate_at_one", 0.0191});
  ok.checks.push_back({"missrate_at_one", 0.0191, 0.024, 0.008, 0.08, true,
                       true});
  ok.seconds = 1.5;
  report.results.push_back(ok);

  ArtifactResult nan_result;
  nan_result.id = "table2";
  nan_result.status = ArtifactStatus::kToleranceFailed;
  nan_result.metrics.push_back({"cw", std::nan("")});
  nan_result.checks.push_back(
      {"cw", std::nan(""), 0.35, 0.2, 0.5, false, true});
  report.results.push_back(nan_result);

  report.ok = 1;
  report.tolerance_failed = 1;
  report.run_counts = {1, 0, 2};
  report.total_seconds = 2.0;
  return report;
}

class ReportJson : public ::testing::Test {
 protected:
  ReportJson() : inputs_(/*quick=*/true) {
    doc_ = build_report_json(synthetic_report(), inputs_,
                             /*study=*/nullptr);
  }
  Inputs inputs_;
  core::Json doc_;
};

TEST_F(ReportJson, HasTheRequiredTopLevelKeys) {
  for (const char* key : {"schema", "paper", "quick", "config",
                          "experiment_runs", "summary", "artifacts"}) {
    EXPECT_NE(doc_.find(key), nullptr) << "missing key: " << key;
  }
  EXPECT_EQ(doc_.find("schema")->as_string(), "fx8bench-report/1");
  EXPECT_TRUE(doc_.find("quick")->as_bool());
  // No artifact forced the shared study, so no engine stats.
  EXPECT_EQ(doc_.find("study_engine"), nullptr);
}

TEST_F(ReportJson, ConfigRecordsTheCanonicalSeeds) {
  const core::Json* config = doc_.find("config");
  ASSERT_NE(config, nullptr);
  const core::Json* study = config->find("study");
  ASSERT_NE(study, nullptr);
  EXPECT_EQ(study->find("seed")->as_number(),
            static_cast<double>(0x19870301));
  const core::Json* transition = config->find("transition");
  ASSERT_NE(transition, nullptr);
  EXPECT_EQ(transition->find("seed")->as_number(),
            static_cast<double>(0x19870402));
}

TEST_F(ReportJson, SummaryAndRunCountsAggregate) {
  const core::Json* summary = doc_.find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->find("artifacts")->as_number(), 2.0);
  EXPECT_EQ(summary->find("ok")->as_number(), 1.0);
  EXPECT_EQ(summary->find("tolerance_failed")->as_number(), 1.0);
  EXPECT_EQ(summary->find("exit_code")->as_number(), 1.0);
  const core::Json* runs = doc_.find("experiment_runs");
  ASSERT_NE(runs, nullptr);
  EXPECT_EQ(runs->find("study_runs")->as_number(), 1.0);
  EXPECT_EQ(runs->find("private_runs")->as_number(), 2.0);
}

TEST_F(ReportJson, ArtifactsJoinCatalogMetadataAndChecks) {
  const core::Json* artifacts = doc_.find("artifacts");
  ASSERT_NE(artifacts, nullptr);
  ASSERT_EQ(artifacts->size(), 2u);
  const core::Json& fig12 = artifacts->items()[0].second;
  EXPECT_EQ(fig12.find("id")->as_string(), "fig12");
  EXPECT_EQ(fig12.find("kind")->as_string(), "figure");
  EXPECT_EQ(fig12.find("paper_ref")->as_string(), "Figure 12");
  EXPECT_EQ(fig12.find("status")->as_string(), "ok");
  const core::Json* checks = fig12.find("checks");
  ASSERT_NE(checks, nullptr);
  ASSERT_EQ(checks->size(), 1u);
  const core::Json& check = checks->items()[0].second;
  for (const char* key :
       {"name", "measured", "paper", "lo", "hi", "pass", "enforced"}) {
    EXPECT_NE(check.find(key), nullptr) << "missing check key: " << key;
  }
  EXPECT_TRUE(check.find("pass")->as_bool());
}

TEST_F(ReportJson, NanMetricsSerializeAsNullAndStayValidJson) {
  const std::string dumped = doc_.dump(2);
  EXPECT_EQ(dumped.find("nan"), std::string::npos);
  EXPECT_EQ(dumped.find("inf"), std::string::npos);
  EXPECT_NE(dumped.find("\"cw\": null"), std::string::npos);
}

}  // namespace
}  // namespace repro::artifacts
