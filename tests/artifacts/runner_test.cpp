// Runner semantics with synthetic artifacts: status propagation, NaN
// handling, exit codes, and the structure of the JSON report. No
// simulation runs here — renders are stubs.
#include "artifacts/runner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "artifacts/registry.hpp"

namespace repro::artifacts {
namespace {

ArtifactDef stub(const std::string& id,
                 std::function<void(Context&)> render) {
  ArtifactDef def;
  def.id = id;
  def.kind = ArtifactKind::kFigure;
  def.paper_ref = "Figure 0";
  def.title = "STUB — " + id;
  def.paper_claim = "synthetic";
  def.render = std::move(render);
  return def;
}

TEST(Runner, PassingChecksYieldOk) {
  Inputs inputs(/*quick=*/true);
  const ArtifactDef def = stub("ok_artifact", [](Context& ctx) {
    ctx.printf("body %d\n", 7);
    EXPECT_TRUE(ctx.check("metric", 0.35, 0.35, 0.2, 0.5));
  });
  const ArtifactResult result = run_artifact(def, inputs);
  EXPECT_EQ(result.status, ArtifactStatus::kOk);
  EXPECT_EQ(result.text, "body 7\n");
  ASSERT_EQ(result.checks.size(), 1u);
  EXPECT_TRUE(result.checks[0].pass);
  EXPECT_TRUE(result.checks[0].enforced);
  // check() records the metric too.
  ASSERT_EQ(result.metrics.size(), 1u);
  EXPECT_EQ(result.metrics[0].name, "metric");
}

TEST(Runner, OutOfBandCheckFailsTheArtifact) {
  Inputs inputs(/*quick=*/true);
  const ArtifactDef def = stub("bad_artifact", [](Context& ctx) {
    EXPECT_FALSE(ctx.check("metric", 0.9, 0.35, 0.2, 0.5));
  });
  EXPECT_EQ(run_artifact(def, inputs).status,
            ArtifactStatus::kToleranceFailed);
}

TEST(Runner, NanNeverPasses) {
  Inputs inputs(/*quick=*/true);
  const ArtifactDef def = stub("nan_artifact", [](Context& ctx) {
    EXPECT_FALSE(ctx.check("metric", std::nan(""), 0.35, 0.0, 1.0));
  });
  EXPECT_EQ(run_artifact(def, inputs).status,
            ArtifactStatus::kToleranceFailed);
}

TEST(Runner, NotesNeverFailTheArtifact) {
  Inputs inputs(/*quick=*/true);
  const ArtifactDef def = stub("noted_artifact", [](Context& ctx) {
    EXPECT_FALSE(ctx.note("shape", 99.0, 0.0, -1.0, 1.0));
  });
  const ArtifactResult result = run_artifact(def, inputs);
  EXPECT_EQ(result.status, ArtifactStatus::kOk);
  ASSERT_EQ(result.checks.size(), 1u);
  EXPECT_FALSE(result.checks[0].pass);
  EXPECT_FALSE(result.checks[0].enforced);
}

TEST(Runner, ThrowingRenderBecomesError) {
  Inputs inputs(/*quick=*/true);
  const ArtifactDef def = stub("throwing_artifact", [](Context&) {
    throw std::runtime_error("degenerate fit");
  });
  const ArtifactResult result = run_artifact(def, inputs);
  EXPECT_EQ(result.status, ArtifactStatus::kError);
  EXPECT_EQ(result.error, "degenerate fit");
}

TEST(Runner, ExplicitFailBecomesError) {
  Inputs inputs(/*quick=*/true);
  const ArtifactDef def = stub("failing_artifact", [](Context& ctx) {
    ctx.fail("no captures completed");
  });
  const ArtifactResult result = run_artifact(def, inputs);
  EXPECT_EQ(result.status, ArtifactStatus::kError);
  EXPECT_EQ(result.error, "no captures completed");
}

TEST(Runner, ExitCodesRankErrorsAboveTolerance) {
  RunReport report;
  EXPECT_EQ(report.exit_code(), 0);
  report.tolerance_failed = 1;
  EXPECT_EQ(report.exit_code(), 1);
  report.errors = 1;
  EXPECT_EQ(report.exit_code(), 2);
}

TEST(Runner, RunArtifactsAggregates) {
  Inputs inputs(/*quick=*/true);
  const ArtifactDef good = stub("good", [](Context& ctx) {
    ctx.check("m", 1.0, 1.0, 0.5, 1.5);
  });
  const ArtifactDef bad = stub("bad", [](Context& ctx) {
    ctx.check("m", 9.0, 1.0, 0.5, 1.5);
  });
  const ArtifactDef broken =
      stub("broken", [](Context&) { throw std::runtime_error("boom"); });
  const RunReport report =
      run_artifacts({&good, &bad, &broken}, inputs);
  EXPECT_EQ(report.ok, 1);
  EXPECT_EQ(report.tolerance_failed, 1);
  EXPECT_EQ(report.errors, 1);
  EXPECT_EQ(report.exit_code(), 2);
  ASSERT_EQ(report.results.size(), 3u);
  EXPECT_EQ(report.results[0].id, "good");
  EXPECT_GE(report.results[0].seconds, 0.0);
}

TEST(Runner, HeaderMatchesTheOldBenchFormat) {
  ArtifactDef def = stub("x", [](Context&) {});
  def.title = "TABLE 2 — Overall Concurrency Measures";
  def.paper_claim = "Cw = 0.35";
  const std::string header = render_header(def);
  EXPECT_EQ(header,
            "=============================================================\n"
            "TABLE 2 — Overall Concurrency Measures\n"
            "Paper: Cw = 0.35\n"
            "=============================================================\n"
            "\n");
}

}  // namespace
}  // namespace repro::artifacts
