#include "cache/icache.hpp"

#include <gtest/gtest.h>

#include "base/expect.hpp"

namespace repro::cache {
namespace {

TEST(InstructionCache, FittingCodeNeverSpills) {
  InstructionCache icache;  // 16 KB
  EXPECT_TRUE(icache.fits(16 * 1024));
  EXPECT_DOUBLE_EQ(icache.spill_fraction(16 * 1024), 0.0);
  for (std::uint64_t key = 0; key < 1000; ++key) {
    EXPECT_FALSE(icache.spills(key, 8 * 1024));
  }
}

TEST(InstructionCache, OversizedCodeSpills) {
  InstructionCache icache;
  EXPECT_FALSE(icache.fits(32 * 1024));
  EXPECT_GT(icache.spill_fraction(32 * 1024), 0.0);
  int spills = 0;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    spills += icache.spills(key, 32 * 1024) ? 1 : 0;
  }
  EXPECT_GT(spills, 100);
  EXPECT_LT(spills, 1000);
}

TEST(InstructionCache, SpillFractionMonotonic) {
  InstructionCache icache;
  double prev = 0.0;
  for (std::uint64_t code = 16 * 1024; code <= 256 * 1024; code += 16 * 1024) {
    const double frac = icache.spill_fraction(code);
    EXPECT_GE(frac, prev);
    EXPECT_LE(frac, 1.0);
    prev = frac;
  }
}

TEST(InstructionCache, SpillDecisionIsDeterministic) {
  InstructionCache icache;
  for (std::uint64_t key = 0; key < 200; ++key) {
    EXPECT_EQ(icache.spills(key, 48 * 1024), icache.spills(key, 48 * 1024));
  }
}

TEST(InstructionCache, HugeFootprintSpillsAlmostEverything) {
  InstructionCache icache;
  EXPECT_GT(icache.spill_fraction(1ULL << 30), 0.9999);
  EXPECT_LE(icache.spill_fraction(1ULL << 30), 1.0);
}

TEST(InstructionCache, RejectsZeroCapacity) {
  EXPECT_THROW(InstructionCache{0}, ContractViolation);
}

}  // namespace
}  // namespace repro::cache
