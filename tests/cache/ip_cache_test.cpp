#include "cache/ip_cache.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "mem/main_memory.hpp"
#include "mem/memory_bus.hpp"

namespace repro::cache {
namespace {

class IpCacheTest : public ::testing::Test {
 protected:
  IpCacheTest()
      : memory_(mem::MainMemoryConfig{}),
        bus_(mem::MemoryBusConfig{}, memory_),
        cache_(IpCacheConfig{}, bus_) {}

  mem::MainMemory memory_;
  mem::MemoryBus bus_;
  IpCache cache_;
};

TEST_F(IpCacheTest, ColdMissThenHit) {
  EXPECT_FALSE(cache_.access(0x100, false));
  EXPECT_TRUE(cache_.access(0x100, false));
  EXPECT_EQ(cache_.stats().accesses, 2u);
  EXPECT_EQ(cache_.stats().misses, 1u);
}

TEST_F(IpCacheTest, MissQueuesIpTraffic) {
  (void)cache_.access(0x100, false);
  EXPECT_EQ(bus_.queue_depth(0), 1u);
}

TEST_F(IpCacheTest, ConflictingLinesEvict) {
  // Direct mapped 32 KB: lines 32 KB apart collide.
  EXPECT_FALSE(cache_.access(0x0, false));
  EXPECT_FALSE(cache_.access(32 * 1024, false));
  EXPECT_FALSE(cache_.access(0x0, false));  // evicted by the second
}

TEST_F(IpCacheTest, WriteInvokesSnoopHook) {
  std::vector<Addr> snooped;
  cache_.set_snoop_hook([&snooped](Addr line) { snooped.push_back(line); });
  (void)cache_.access(0x1234, true);
  ASSERT_EQ(snooped.size(), 1u);
  EXPECT_EQ(snooped[0], 0x1234 / kLineBytes * kLineBytes);
  EXPECT_EQ(cache_.stats().write_snoops, 1u);
}

TEST_F(IpCacheTest, ReadDoesNotSnoop) {
  bool snooped = false;
  cache_.set_snoop_hook([&snooped](Addr) { snooped = true; });
  (void)cache_.access(0x1234, false);
  EXPECT_FALSE(snooped);
}

TEST_F(IpCacheTest, NoHookIsSafe) {
  EXPECT_NO_FATAL_FAILURE((void)cache_.access(0x1234, true));
}

}  // namespace
}  // namespace repro::cache
