#include "cache/shared_cache.hpp"

#include <gtest/gtest.h>

#include "base/expect.hpp"
#include "mem/main_memory.hpp"
#include "mem/memory_bus.hpp"

namespace repro::cache {
namespace {

class SharedCacheTest : public ::testing::Test {
 protected:
  SharedCacheTest()
      : memory_(mem::MainMemoryConfig{}),
        bus_(mem::MemoryBusConfig{}, memory_),
        cache_(SharedCacheConfig{}, bus_) {}

  /// Run bus + cache until the CE's outstanding fill is ready (bounded).
  void drain_fill(CeId ce) {
    for (int i = 0; i < 100; ++i) {
      bus_.tick(now_++);
      cache_.tick();
      if (cache_.take_fill_ready(ce)) {
        return;
      }
    }
    FAIL() << "fill never completed";
  }

  mem::MainMemory memory_;
  mem::MemoryBus bus_;
  SharedCache cache_;
  Cycle now_ = 0;
};

TEST_F(SharedCacheTest, ColdReadMissesThenHits) {
  EXPECT_EQ(cache_.access(0, 0x1000, AccessType::kRead),
            AccessOutcome::kMissStarted);
  drain_fill(0);
  EXPECT_EQ(cache_.access(0, 0x1000, AccessType::kRead),
            AccessOutcome::kHit);
  EXPECT_EQ(cache_.stats().accesses, 2u);
  EXPECT_EQ(cache_.stats().misses, 1u);
}

TEST_F(SharedCacheTest, SameLineDifferentOffsetHits) {
  (void)cache_.access(0, 0x1000, AccessType::kRead);
  drain_fill(0);
  EXPECT_EQ(cache_.access(0, 0x1000 + kLineBytes - 1, AccessType::kRead),
            AccessOutcome::kHit);
}

TEST_F(SharedCacheTest, CrossCeFillSharing) {
  // CE0 misses; CE1 touches the same line while the fill is in flight and
  // merges instead of issuing a second fetch.
  EXPECT_EQ(cache_.access(0, 0x2000, AccessType::kRead),
            AccessOutcome::kMissStarted);
  EXPECT_EQ(cache_.access(1, 0x2000, AccessType::kRead),
            AccessOutcome::kMissMerged);
  EXPECT_EQ(cache_.stats().merged_misses, 1u);
  // Both CEs wake from the single fill.
  for (int i = 0; i < 100 && !(cache_.take_fill_ready(0)); ++i) {
    bus_.tick(now_++);
    cache_.tick();
  }
  EXPECT_TRUE(cache_.take_fill_ready(1));
}

TEST_F(SharedCacheTest, NeighbouringCeHitsAfterFill) {
  (void)cache_.access(0, 0x3000, AccessType::kRead);
  drain_fill(0);
  // A different CE reading the same line hits: the cross-CE locality
  // mechanism of paper §5.1.
  EXPECT_EQ(cache_.access(5, 0x3000 + 8, AccessType::kRead),
            AccessOutcome::kHit);
}

TEST_F(SharedCacheTest, WriteMissInstallsUniqueAndDirty) {
  EXPECT_EQ(cache_.access(2, 0x4000, AccessType::kWrite),
            AccessOutcome::kMissStarted);
  drain_fill(2);
  // A subsequent write hits without an upgrade.
  const std::uint64_t upgrades_before = cache_.stats().write_upgrades;
  EXPECT_EQ(cache_.access(2, 0x4000, AccessType::kWrite),
            AccessOutcome::kHit);
  EXPECT_EQ(cache_.stats().write_upgrades, upgrades_before);
}

TEST_F(SharedCacheTest, WriteToSharedLineUpgrades) {
  (void)cache_.access(0, 0x5000, AccessType::kRead);
  drain_fill(0);
  const std::uint64_t upgrades_before = cache_.stats().write_upgrades;
  EXPECT_EQ(cache_.access(0, 0x5000, AccessType::kWrite),
            AccessOutcome::kHit);
  EXPECT_EQ(cache_.stats().write_upgrades, upgrades_before + 1);
}

TEST_F(SharedCacheTest, SnoopInvalidateRemovesLine) {
  (void)cache_.access(0, 0x6000, AccessType::kRead);
  drain_fill(0);
  ASSERT_TRUE(cache_.contains(0x6000));
  cache_.snoop_invalidate(0x6000);
  EXPECT_FALSE(cache_.contains(0x6000));
  EXPECT_EQ(cache_.stats().snoop_invalidations, 1u);
  EXPECT_EQ(cache_.access(0, 0x6000, AccessType::kRead),
            AccessOutcome::kMissStarted);
}

TEST_F(SharedCacheTest, SnoopOfDirtyLineWritesBack) {
  (void)cache_.access(0, 0x7000, AccessType::kWrite);
  drain_fill(0);
  const std::uint64_t wb_before = cache_.stats().write_backs;
  cache_.snoop_invalidate(0x7000);
  EXPECT_EQ(cache_.stats().write_backs, wb_before + 1);
}

TEST_F(SharedCacheTest, SnoopOfAbsentLineIsNoOp) {
  cache_.snoop_invalidate(0xDEAD000);
  EXPECT_EQ(cache_.stats().snoop_invalidations, 0u);
}

TEST_F(SharedCacheTest, EvictionOnSetOverflow) {
  // Fill one set beyond its associativity: same bank, same set-in-bank.
  // With 128KB / 32B lines / 4 banks / 2 ways = 512 sets per bank, two
  // addresses alias a set when they differ by banks*sets*line bytes.
  const Addr step = 4ULL * 512 * kLineBytes;
  for (int i = 0; i < 3; ++i) {
    (void)cache_.access(0, 0x100 + static_cast<Addr>(i) * step,
                        AccessType::kRead);
    drain_fill(0);
  }
  // The oldest of the three must have been evicted.
  EXPECT_FALSE(cache_.contains(0x100));
  EXPECT_TRUE(cache_.contains(0x100 + 2 * step));
}

TEST_F(SharedCacheTest, BankMapping) {
  EXPECT_EQ(cache_.bank_of(0), 0u);
  EXPECT_EQ(cache_.bank_of(kLineBytes), 1u);
  EXPECT_EQ(cache_.bank_of(3 * kLineBytes), 3u);
  EXPECT_EQ(cache_.module_of_bank(0), 0u);
  EXPECT_EQ(cache_.module_of_bank(1), 0u);
  EXPECT_EQ(cache_.module_of_bank(2), 1u);
  EXPECT_EQ(cache_.module_of_bank(3), 1u);
}

TEST_F(SharedCacheTest, DoubleMissFromSameCeIsContractViolation) {
  (void)cache_.access(0, 0x8000, AccessType::kRead);
  EXPECT_THROW((void)cache_.access(0, 0x9000, AccessType::kRead),
               ContractViolation);
}

TEST_F(SharedCacheTest, MissOutstandingTracksLifecycle) {
  EXPECT_FALSE(cache_.miss_outstanding(0));
  (void)cache_.access(0, 0xA000, AccessType::kRead);
  EXPECT_TRUE(cache_.miss_outstanding(0));
  drain_fill(0);
  EXPECT_FALSE(cache_.miss_outstanding(0));
}

TEST_F(SharedCacheTest, RejectsBadGeometry) {
  mem::MainMemory memory{mem::MainMemoryConfig{}};
  mem::MemoryBus bus{mem::MemoryBusConfig{}, memory};
  SharedCacheConfig bad;
  bad.banks = 3;  // does not divide across 2 modules
  EXPECT_THROW((SharedCache{bad, bus}), ContractViolation);
}

}  // namespace
}  // namespace repro::cache
