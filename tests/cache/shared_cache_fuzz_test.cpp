// Property/fuzz tests: the shared cache against a reference model.
//
// A simple map-of-lines reference predicts hit/miss for every access;
// the real cache (with banks, ways, MSHRs and LRU) must agree on hits
// whenever the reference is conservative, and must never lose coherence
// invariants no matter the access sequence.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "base/rng.hpp"
#include "cache/shared_cache.hpp"
#include "mem/main_memory.hpp"
#include "mem/memory_bus.hpp"

namespace repro::cache {
namespace {

class SharedCacheFuzz : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  SharedCacheFuzz()
      : memory_(mem::MainMemoryConfig{}),
        bus_(mem::MemoryBusConfig{}, memory_),
        cache_(SharedCacheConfig{}, bus_) {}

  void drain_all_fills() {
    for (int i = 0; i < 200; ++i) {
      bus_.tick(now_++);
      cache_.tick();
    }
  }

  mem::MainMemory memory_;
  mem::MemoryBus bus_;
  SharedCache cache_;
  Cycle now_ = 0;
};

TEST_P(SharedCacheFuzz, AgreesWithReferenceOnRepeatAccesses) {
  Rng rng(GetParam());
  // Small region so reuse is common; one CE so no MSHR interleaving.
  for (int round = 0; round < 300; ++round) {
    const Addr addr = rng.uniform(64) * kLineBytes + rng.uniform(32);
    const bool present_before = cache_.contains(addr);
    const AccessOutcome outcome =
        cache_.access(0, addr, AccessType::kRead);
    if (present_before) {
      EXPECT_EQ(outcome, AccessOutcome::kHit)
          << "line present but access missed";
    }
    if (outcome != AccessOutcome::kHit) {
      drain_all_fills();
      EXPECT_TRUE(cache_.take_fill_ready(0));
      EXPECT_TRUE(cache_.contains(addr)) << "fill did not install line";
    }
  }
}

TEST_P(SharedCacheFuzz, RandomMultiCeTrafficKeepsInvariants) {
  Rng rng(GetParam() ^ 0xF00D);
  std::array<bool, kMaxCes> stalled{};
  std::uint64_t completed_accesses = 0;
  for (int round = 0; round < 5000; ++round) {
    const CeId ce = static_cast<CeId>(rng.uniform(kMaxCes));
    if (stalled[ce]) {
      if (cache_.take_fill_ready(ce)) {
        stalled[ce] = false;
        ++completed_accesses;
      }
    } else {
      const Addr addr = rng.uniform(512) * 16;
      const auto type = rng.bernoulli(0.3) ? AccessType::kWrite
                                           : AccessType::kRead;
      const AccessOutcome outcome = cache_.access(ce, addr, type);
      if (outcome == AccessOutcome::kHit) {
        ++completed_accesses;
      } else {
        stalled[ce] = true;
        EXPECT_TRUE(cache_.miss_outstanding(ce));
      }
    }
    bus_.tick(now_++);
    cache_.tick();
  }
  drain_all_fills();
  EXPECT_GT(completed_accesses, 1000u);
  // Accounting holds: every access is a hit, a miss, or a merged miss.
  const SharedCacheStats& stats = cache_.stats();
  EXPECT_GE(stats.accesses, stats.misses + stats.merged_misses);
}

TEST_P(SharedCacheFuzz, SnoopsNeverBreakSubsequentAccesses) {
  Rng rng(GetParam() ^ 0xBEEF);
  for (int round = 0; round < 1000; ++round) {
    const Addr addr = rng.uniform(128) * kLineBytes;
    if (rng.bernoulli(0.3)) {
      cache_.snoop_invalidate(addr);
      EXPECT_FALSE(cache_.contains(addr));
    } else if (!cache_.miss_outstanding(0)) {
      (void)cache_.access(0, addr, rng.bernoulli(0.5)
                                       ? AccessType::kWrite
                                       : AccessType::kRead);
    } else {
      (void)cache_.take_fill_ready(0);
    }
    bus_.tick(now_++);
    cache_.tick();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharedCacheFuzz,
                         ::testing::Values(1, 17, 1987, 0xABCDEF));

}  // namespace
}  // namespace repro::cache
