#include "trace/tracer.hpp"

#include <gtest/gtest.h>

#include "fx8/machine.hpp"
#include "fx8/mmu.hpp"
#include "isa/program.hpp"
#include "workload/kernels.hpp"

namespace repro::trace {
namespace {

class TracerTest : public ::testing::Test {
 protected:
  TracerTest() : machine_(fx8::MachineConfig::fx8(), mmu_) {
    machine_.cluster().set_observer(&tracer_);
  }

  void run_program(const isa::Program& program, JobId job = 1) {
    machine_.cluster().load(&program, job);
    while (machine_.cluster().busy()) {
      machine_.tick();
    }
  }

  isa::Program loop_program(std::uint64_t trip) {
    workload::KernelTuning tuning;
    isa::ConcurrentLoopPhase loop;
    loop.body = workload::triad_body(tuning);
    loop.trip_count = trip;
    return isa::ProgramBuilder("traced")
        .data_base(0x01000000)
        .serial(workload::scalar_setup_body(tuning), 2)
        .concurrent_loop(loop)
        .build();
  }

  fx8::NoFaultMmu mmu_;
  fx8::Machine machine_;
  EventTracer tracer_;
};

std::size_t count_kind(const std::vector<TraceEvent>& events,
                       EventKind kind) {
  std::size_t n = 0;
  for (const TraceEvent& event : events) {
    n += event.kind == kind;
  }
  return n;
}

TEST_F(TracerTest, JobMarkersBracketTheTrace) {
  run_program(loop_program(16));
  const auto& events = tracer_.events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().kind, EventKind::kJobStart);
  EXPECT_EQ(events.back().kind, EventKind::kJobEnd);
  EXPECT_EQ(count_kind(events, EventKind::kJobStart), 1u);
  EXPECT_EQ(count_kind(events, EventKind::kJobEnd), 1u);
}

TEST_F(TracerTest, EveryIterationHasStartAndEnd) {
  run_program(loop_program(40));
  const auto& events = tracer_.events();
  EXPECT_EQ(count_kind(events, EventKind::kIterationStart), 40u);
  EXPECT_EQ(count_kind(events, EventKind::kIterationEnd), 40u);
}

TEST_F(TracerTest, IterationIndicesCoverTheRange) {
  run_program(loop_program(24));
  std::set<std::uint64_t> seen;
  for (const TraceEvent& event : tracer_.events()) {
    if (event.kind == EventKind::kIterationEnd) {
      seen.insert(event.arg);
    }
  }
  EXPECT_EQ(seen.size(), 24u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 23u);
}

TEST_F(TracerTest, PhaseMarkersArePaired) {
  run_program(loop_program(16));
  const auto& events = tracer_.events();
  EXPECT_EQ(count_kind(events, EventKind::kSerialPhaseStart),
            count_kind(events, EventKind::kSerialPhaseEnd));
  EXPECT_EQ(count_kind(events, EventKind::kLoopStart), 1u);
  EXPECT_EQ(count_kind(events, EventKind::kLoopEnd), 1u);
}

TEST_F(TracerTest, TimesAreMonotone) {
  run_program(loop_program(16));
  Cycle prev = 0;
  for (const TraceEvent& event : tracer_.events()) {
    EXPECT_GE(event.time, prev);
    prev = event.time;
  }
}

TEST_F(TracerTest, LoopStartCarriesTripCount) {
  run_program(loop_program(42));
  for (const TraceEvent& event : tracer_.events()) {
    if (event.kind == EventKind::kLoopStart) {
      EXPECT_EQ(event.arg, 42u);
    }
  }
}

TEST_F(TracerTest, CapacityBoundsRetention) {
  EventTracer bounded(10);
  machine_.cluster().set_observer(&bounded);
  run_program(loop_program(64));
  EXPECT_EQ(bounded.events().size(), 10u);
  EXPECT_GT(bounded.dropped(), 0u);
}

TEST_F(TracerTest, ClearResets) {
  run_program(loop_program(16));
  tracer_.clear();
  EXPECT_TRUE(tracer_.events().empty());
  EXPECT_EQ(tracer_.dropped(), 0u);
}

TEST_F(TracerTest, DetachStopsRecording) {
  machine_.cluster().set_observer(nullptr);
  run_program(loop_program(16));
  EXPECT_TRUE(tracer_.events().empty());
}

TEST(TraceEventNames, Distinct) {
  EXPECT_EQ(name(EventKind::kJobStart), "job-start");
  EXPECT_NE(name(EventKind::kIterationStart),
            name(EventKind::kIterationEnd));
}

}  // namespace
}  // namespace repro::trace
