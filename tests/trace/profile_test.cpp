#include "trace/profile.hpp"

#include <gtest/gtest.h>

#include "base/expect.hpp"
#include "fx8/machine.hpp"
#include "fx8/mmu.hpp"
#include "isa/program.hpp"
#include "trace/tracer.hpp"
#include "workload/kernels.hpp"

namespace repro::trace {
namespace {

// --- Synthetic-trace tests: exact expectations -------------------------

std::vector<TraceEvent> synthetic_trace() {
  // Job 1: [0,100]; serial [0,20]; loop [20,90] trip 2, two iterations
  // overlapping on CEs 0 and 1: [25,65] and [30,70]; serial [90,100].
  return {
      {0, EventKind::kJobStart, 1, 0, 0, 0},
      {0, EventKind::kSerialPhaseStart, 1, 0, 0, 0},
      {20, EventKind::kSerialPhaseEnd, 1, 0, 0, 0},
      {20, EventKind::kLoopStart, 1, 1, 0, 2},
      {25, EventKind::kIterationStart, 1, 1, 0, 0},
      {30, EventKind::kIterationStart, 1, 1, 1, 1},
      {65, EventKind::kIterationEnd, 1, 1, 0, 0},
      {70, EventKind::kIterationEnd, 1, 1, 1, 1},
      {90, EventKind::kLoopEnd, 1, 1, 0, 0},
      {90, EventKind::kSerialPhaseStart, 1, 2, 0, 0},
      {100, EventKind::kSerialPhaseEnd, 1, 2, 0, 0},
      {100, EventKind::kJobEnd, 1, 0, 0, 0},
  };
}

TEST(Profile, SyntheticTraceMeasuresExactly) {
  const auto events = synthetic_trace();
  const ProgramProfile profile = profile_job(events, 1, 2);
  EXPECT_EQ(profile.duration(), 100u);
  EXPECT_EQ(profile.serial_cycles, 30u);
  EXPECT_EQ(profile.concurrent_cycles, 70u);
  EXPECT_DOUBLE_EQ(profile.cw, 0.7);
  ASSERT_TRUE(profile.pc_defined);
  // Overlap integral: [25,30):1*5 + [30,65):2*35 + [65,70):1*5 = 80.
  EXPECT_NEAR(profile.pc, 80.0 / 70.0, 1e-12);

  ASSERT_EQ(profile.loops.size(), 1u);
  const LoopProfile& loop = profile.loops[0];
  EXPECT_EQ(loop.trip_count, 2u);
  EXPECT_EQ(loop.duration(), 70u);
  EXPECT_NEAR(loop.mean_overlap, 80.0 / 70.0, 1e-12);
  // Overlap reaches full width (2) at t=30; drain = 90 - 30 = 60.
  EXPECT_EQ(loop.drain_cycles, 60u);
  EXPECT_EQ(loop.iterations_per_ce[0], 1u);
  EXPECT_EQ(loop.iterations_per_ce[1], 1u);
}

TEST(Profile, MissingMarkersThrow) {
  auto events = synthetic_trace();
  events.pop_back();  // drop job-end
  EXPECT_THROW((void)profile_job(events, 1, 2), ContractViolation);
  EXPECT_THROW((void)profile_job(synthetic_trace(), 99, 2),
               ContractViolation);
}

TEST(Profile, SerialOnlyJobHasUndefinedPc) {
  const std::vector<TraceEvent> events = {
      {0, EventKind::kJobStart, 1, 0, 0, 0},
      {0, EventKind::kSerialPhaseStart, 1, 0, 0, 0},
      {50, EventKind::kSerialPhaseEnd, 1, 0, 0, 0},
      {50, EventKind::kJobEnd, 1, 0, 0, 0},
  };
  const ProgramProfile profile = profile_job(events, 1);
  EXPECT_DOUBLE_EQ(profile.cw, 0.0);
  EXPECT_FALSE(profile.pc_defined);
  EXPECT_TRUE(profile.loops.empty());
}

// --- End-to-end: profile a real traced execution -----------------------

class ProfileEndToEnd : public ::testing::Test {
 protected:
  ProfileEndToEnd() : machine_(fx8::MachineConfig::fx8(), mmu_) {
    machine_.cluster().set_observer(&tracer_);
  }

  fx8::NoFaultMmu mmu_;
  fx8::Machine machine_;
  EventTracer tracer_;
};

TEST_F(ProfileEndToEnd, TracedJobProfileIsConsistent) {
  workload::KernelTuning tuning;
  isa::ConcurrentLoopPhase loop;
  loop.body = workload::matmul_row_body(tuning);
  loop.trip_count = 8 * 4 + 2;
  const isa::Program program = isa::ProgramBuilder("profiled")
                                   .data_base(0x01000000)
                                   .serial(workload::scalar_setup_body(tuning), 1)
                                   .concurrent_loop(loop)
                                   .serial(workload::scalar_setup_body(tuning), 1)
                                   .build();
  machine_.cluster().load(&program, 7);
  while (machine_.cluster().busy()) {
    machine_.tick();
  }

  const ProgramProfile profile = profile_job(tracer_.events(), 7);
  EXPECT_GT(profile.duration(), 0u);
  EXPECT_GT(profile.cw, 0.3);
  EXPECT_LT(profile.cw, 1.0);
  ASSERT_TRUE(profile.pc_defined);
  EXPECT_GT(profile.pc, 4.0);
  EXPECT_LE(profile.pc, 8.0);

  ASSERT_EQ(profile.loops.size(), 1u);
  const LoopProfile& lp = profile.loops[0];
  EXPECT_EQ(lp.trip_count, 34u);
  std::uint64_t total_iters = 0;
  for (const std::uint64_t n : lp.iterations_per_ce) {
    total_iters += n;
  }
  EXPECT_EQ(total_iters, 34u);
  EXPECT_GT(lp.drain_cycles, 0u);
  EXPECT_LT(lp.drain_cycles, lp.duration());
}

TEST_F(ProfileEndToEnd, ProfileAllFindsEveryCompletedJob) {
  workload::KernelTuning tuning;
  const isa::Program program =
      isa::ProgramBuilder("p")
          .data_base(0x01000000)
          .serial(workload::editor_body(tuning), 1)
          .build();
  for (JobId job = 1; job <= 3; ++job) {
    machine_.cluster().load(&program, job);
    while (machine_.cluster().busy()) {
      machine_.tick();
    }
  }
  const auto profiles = profile_all(tracer_.events());
  ASSERT_EQ(profiles.size(), 3u);
  EXPECT_EQ(profiles[0].job, 1u);
  EXPECT_EQ(profiles[2].job, 3u);
  // Start-ordered.
  EXPECT_LT(profiles[0].start, profiles[1].start);
}

}  // namespace
}  // namespace repro::trace
