#include "trace/timeline.hpp"

#include <gtest/gtest.h>

#include "base/expect.hpp"
#include "fx8/machine.hpp"
#include "fx8/mmu.hpp"
#include "isa/program.hpp"
#include "trace/tracer.hpp"
#include "workload/kernels.hpp"

namespace repro::trace {
namespace {

std::vector<TraceEvent> tiny_trace() {
  return {
      {0, EventKind::kJobStart, 1, 0, 0, 0},
      {0, EventKind::kSerialPhaseStart, 1, 0, 0, 0},
      {40, EventKind::kSerialPhaseEnd, 1, 0, 0, 0},
      {40, EventKind::kLoopStart, 1, 1, 0, 2},
      {45, EventKind::kIterationStart, 1, 1, 0, 0},
      {50, EventKind::kIterationStart, 1, 1, 3, 1},
      {90, EventKind::kIterationEnd, 1, 1, 0, 0},
      {95, EventKind::kIterationEnd, 1, 1, 3, 1},
      {100, EventKind::kLoopEnd, 1, 1, 0, 0},
      {100, EventKind::kJobEnd, 1, 0, 0, 0},
  };
}

TEST(Timeline, RendersRowsForEveryCe) {
  const std::string text = render_timeline(tiny_trace(), 1,
                                           TimelineOptions{});
  EXPECT_NE(text.find("CE0 |"), std::string::npos);
  EXPECT_NE(text.find("CE7 |"), std::string::npos);
  EXPECT_NE(text.find("ser |"), std::string::npos);
}

TEST(Timeline, MarksIterationsAndSerialWork) {
  const std::string text = render_timeline(tiny_trace(), 1,
                                           TimelineOptions{});
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find('.'), std::string::npos);
  // CE3 executed an iteration; CE5 did not.
  const auto ce3_row = text.find("CE3 |");
  const auto ce5_row = text.find("CE5 |");
  ASSERT_NE(ce3_row, std::string::npos);
  ASSERT_NE(ce5_row, std::string::npos);
  EXPECT_NE(text.find('#', ce3_row), std::string::npos);
  const auto ce5_end = text.find('\n', ce5_row);
  EXPECT_EQ(text.substr(ce5_row, ce5_end - ce5_row).find('#'),
            std::string::npos);
}

TEST(Timeline, MissingJobThrows) {
  EXPECT_THROW((void)render_timeline(tiny_trace(), 9, TimelineOptions{}),
               ContractViolation);
}

TEST(Timeline, BadOptionsThrow) {
  TimelineOptions narrow;
  narrow.columns = 2;
  EXPECT_THROW((void)render_timeline(tiny_trace(), 1, narrow),
               ContractViolation);
}

TEST(Timeline, EndToEndTraceRenders) {
  fx8::NoFaultMmu mmu;
  fx8::Machine machine(fx8::MachineConfig::fx8(), mmu);
  EventTracer tracer;
  machine.cluster().set_observer(&tracer);

  workload::KernelTuning tuning;
  isa::ConcurrentLoopPhase loop;
  loop.body = workload::triad_body(tuning);
  loop.trip_count = 26;
  const isa::Program program = isa::ProgramBuilder("tl")
                                   .data_base(0x01000000)
                                   .concurrent_loop(loop)
                                   .build();
  machine.cluster().load(&program, 1);
  while (machine.cluster().busy()) {
    machine.tick();
  }
  const std::string text =
      render_timeline(tracer.events(), 1, TimelineOptions{});
  // All eight CEs took iterations in a 26-trip loop.
  for (int ce = 0; ce < 8; ++ce) {
    const auto row = text.find("CE" + std::to_string(ce) + " |");
    ASSERT_NE(row, std::string::npos);
    const auto row_end = text.find('\n', row);
    EXPECT_NE(text.substr(row, row_end - row).find('#'), std::string::npos)
        << "CE" << ce << " never executed an iteration";
  }
}

}  // namespace
}  // namespace repro::trace
