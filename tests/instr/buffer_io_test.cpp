#include "instr/buffer_io.hpp"

#include <gtest/gtest.h>

#include "base/expect.hpp"
#include "base/rng.hpp"
#include "instr/reduction.hpp"

namespace repro::instr {
namespace {

std::vector<ProbeRecord> random_buffer(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<ProbeRecord> records;
  for (std::size_t i = 0; i < n; ++i) {
    ProbeRecord record;
    record.cycle = rng.uniform(1u << 20);
    for (auto& op : record.ce_ops) {
      op = static_cast<mem::CeBusOp>(rng.uniform(mem::kNumCeBusOps));
    }
    for (auto& op : record.mem_ops) {
      op = static_cast<mem::MemBusOp>(rng.uniform(mem::kNumMemBusOps));
    }
    record.active_mask = static_cast<std::uint32_t>(rng.uniform(256));
    records.push_back(record);
  }
  return records;
}

TEST(BufferIo, RoundTripsRandomBuffers) {
  const auto original = random_buffer(7, 512);
  const auto parsed = parse_buffer(buffer_to_text(original));
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed[i].cycle, original[i].cycle);
    EXPECT_EQ(parsed[i].active_mask, original[i].active_mask);
    EXPECT_EQ(parsed[i].ce_ops, original[i].ce_ops);
    EXPECT_EQ(parsed[i].mem_ops, original[i].mem_ops);
  }
}

TEST(BufferIo, EmptyBufferRoundTrips) {
  const std::vector<ProbeRecord> none;
  EXPECT_TRUE(parse_buffer(buffer_to_text(none)).empty());
}

TEST(BufferIo, MissingHeaderThrows) {
  EXPECT_THROW((void)parse_buffer("1 0 0 0 0 0 0 0 0 0 0 255\n"),
               ContractViolation);
  EXPECT_THROW((void)parse_buffer(""), ContractViolation);
}

TEST(BufferIo, MalformedRecordsThrow) {
  const std::string header =
      "# das-buffer v1: cycle ce0..ce7 mem0 mem1 mask\n";
  // Too few fields.
  EXPECT_THROW((void)parse_buffer(header + "1 0 0\n"), ContractViolation);
  // Opcode out of range.
  EXPECT_THROW(
      (void)parse_buffer(header + "1 9 0 0 0 0 0 0 0 0 0 255\n"),
      ContractViolation);
  // Mask out of range.
  EXPECT_THROW(
      (void)parse_buffer(header + "1 0 0 0 0 0 0 0 0 0 0 300\n"),
      ContractViolation);
  // Trailing junk.
  EXPECT_THROW(
      (void)parse_buffer(header + "1 0 0 0 0 0 0 0 0 0 0 255 junk\n"),
      ContractViolation);
}

TEST(BufferIo, ReducedCountsSurviveRoundTrip) {
  const auto original = random_buffer(21, 256);
  const auto parsed = parse_buffer(buffer_to_text(original));
  // Reduction over the round-tripped buffer matches the original.
  EventCounts a;
  EventCounts b;
  for (const auto& record : original) {
    a.accumulate(record);
  }
  for (const auto& record : parsed) {
    b.accumulate(record);
  }
  EXPECT_EQ(a.num, b.num);
  EXPECT_EQ(a.ceop, b.ceop);
  EXPECT_EQ(a.membop, b.membop);
}

}  // namespace
}  // namespace repro::instr
