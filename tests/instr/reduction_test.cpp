#include "instr/reduction.hpp"

#include <gtest/gtest.h>

namespace repro::instr {
namespace {

ProbeRecord make_record(std::uint32_t active_mask,
                        mem::CeBusOp op_for_active) {
  ProbeRecord record;
  record.active_mask = active_mask;
  for (CeId ce = 0; ce < kMaxCes; ++ce) {
    record.ce_ops[ce] = (active_mask >> ce) & 1u ? op_for_active
                                                 : mem::CeBusOp::kIdle;
  }
  return record;
}

TEST(Reduction, CountsActiveHistogram) {
  EventCounts counts;
  counts.accumulate(make_record(0b11111111, mem::CeBusOp::kRead));
  counts.accumulate(make_record(0b00000001, mem::CeBusOp::kRead));
  counts.accumulate(make_record(0b00000000, mem::CeBusOp::kIdle));
  counts.accumulate(make_record(0b00000011, mem::CeBusOp::kRead));
  EXPECT_EQ(counts.records, 4u);
  EXPECT_EQ(counts.num[8], 1u);
  EXPECT_EQ(counts.num[1], 1u);
  EXPECT_EQ(counts.num[0], 1u);
  EXPECT_EQ(counts.num[2], 1u);
}

TEST(Reduction, CountsPerProcessorActivity) {
  EventCounts counts;
  counts.accumulate(make_record(0b10000001, mem::CeBusOp::kRead));
  counts.accumulate(make_record(0b10000000, mem::CeBusOp::kRead));
  EXPECT_EQ(counts.proc[0], 1u);
  EXPECT_EQ(counts.proc[7], 2u);
  EXPECT_EQ(counts.proc[3], 0u);
}

TEST(Reduction, MissRateMatchesHandCount) {
  EventCounts counts;
  // One record: CE0 read-miss, seven idle -> 1 miss / 8 bus cycles.
  ProbeRecord record;
  record.active_mask = 1;
  record.ce_ops[0] = mem::CeBusOp::kReadMiss;
  counts.accumulate(record);
  EXPECT_DOUBLE_EQ(counts.miss_rate(), 1.0 / 8.0);
}

TEST(Reduction, BusBusyMatchesHandCount) {
  EventCounts counts;
  ProbeRecord record;
  record.active_mask = 0b11;
  record.ce_ops[0] = mem::CeBusOp::kRead;
  record.ce_ops[1] = mem::CeBusOp::kWait;
  counts.accumulate(record);  // 2 busy of 8
  EXPECT_DOUBLE_EQ(counts.bus_busy(), 0.25);
}

TEST(Reduction, WaitCyclesAreBusyButNotMisses) {
  EventCounts counts;
  ProbeRecord record;
  record.ce_ops[0] = mem::CeBusOp::kWait;
  counts.accumulate(record);
  EXPECT_GT(counts.bus_busy(), 0.0);
  EXPECT_DOUBLE_EQ(counts.miss_rate(), 0.0);
}

TEST(Reduction, MemBusOpcodesCounted) {
  EventCounts counts;
  ProbeRecord record;
  record.mem_ops[0] = mem::MemBusOp::kLineFetch;
  record.mem_ops[1] = mem::MemBusOp::kIdle;
  counts.accumulate(record);
  EXPECT_EQ(counts.membop[static_cast<std::size_t>(
                mem::MemBusOp::kLineFetch)],
            1u);
  EXPECT_DOUBLE_EQ(counts.mem_bus_busy(), 0.5);
}

TEST(Reduction, MergeSumsEverything) {
  EventCounts a;
  a.accumulate(make_record(0b1, mem::CeBusOp::kRead));
  EventCounts b;
  b.accumulate(make_record(0b11, mem::CeBusOp::kReadMiss));
  b.accumulate(make_record(0, mem::CeBusOp::kIdle));
  a.merge(b);
  EXPECT_EQ(a.records, 3u);
  EXPECT_EQ(a.ce_bus_cycles, 24u);
  EXPECT_EQ(a.num[1], 1u);
  EXPECT_EQ(a.num[2], 1u);
  EXPECT_EQ(a.num[0], 1u);
}

TEST(Reduction, EmptyCountsHaveZeroRates) {
  EventCounts counts;
  EXPECT_DOUBLE_EQ(counts.miss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(counts.bus_busy(), 0.0);
  EXPECT_DOUBLE_EQ(counts.mem_bus_busy(), 0.0);
}

TEST(Reduction, ReduceProcessesWholeBuffer) {
  std::vector<ProbeRecord> buffer;
  for (int i = 0; i < 10; ++i) {
    buffer.push_back(make_record(0b11111111, mem::CeBusOp::kRead));
  }
  const EventCounts counts = reduce(buffer);
  EXPECT_EQ(counts.records, 10u);
  EXPECT_EQ(counts.num[8], 10u);
  EXPECT_DOUBLE_EQ(counts.bus_busy(), 1.0);
}

TEST(Reduction, RenderMentionsTableSections) {
  EventCounts counts;
  counts.accumulate(make_record(0b1, mem::CeBusOp::kRead));
  const std::string text = counts.render();
  EXPECT_NE(text.find("num_j"), std::string::npos);
  EXPECT_NE(text.find("proc_j"), std::string::npos);
  EXPECT_NE(text.find("ceop_j"), std::string::npos);
  EXPECT_NE(text.find("membop_j"), std::string::npos);
}

}  // namespace
}  // namespace repro::instr
