#include "instr/session_controller.hpp"

#include <gtest/gtest.h>

#include "base/expect.hpp"
#include "workload/presets.hpp"

namespace repro::instr {
namespace {

class SessionControllerTest : public ::testing::Test {
 protected:
  SessionControllerTest()
      : system_(os::SystemConfig{}),
        generator_(workload::high_concurrency_mix(), 77) {}

  SamplingConfig quick_config() {
    SamplingConfig config;
    config.interval_cycles = 20000;
    config.snapshots_per_sample = 5;
    config.buffer_depth = 512;
    return config;
  }

  os::System system_;
  workload::WorkloadGenerator generator_;
};

TEST_F(SessionControllerTest, SampleGathersFiveSnapshots) {
  SessionController controller(system_, generator_, quick_config(), 1);
  const SampleRecord sample = controller.take_sample();
  EXPECT_EQ(sample.hw.records, 5u * 512u);
  EXPECT_EQ(sample.interval_cycles, 20000u);
  EXPECT_EQ(sample.index, 0u);
}

TEST_F(SessionControllerTest, SampleAdvancesSystemTime) {
  SessionController controller(system_, generator_, quick_config(), 1);
  const Cycle before = system_.now();
  (void)controller.take_sample();
  EXPECT_EQ(system_.now(), before + 20000u);
}

TEST_F(SessionControllerTest, SessionIndexesSamples) {
  SessionController controller(system_, generator_, quick_config(), 1);
  const auto samples = controller.run_session(3);
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].index, 0u);
  EXPECT_EQ(samples[2].index, 2u);
}

TEST_F(SessionControllerTest, SoftwareCountersAreDeltas) {
  SessionController controller(system_, generator_, quick_config(), 1);
  const auto samples = controller.run_session(4);
  std::uint64_t total_faults = 0;
  for (const SampleRecord& sample : samples) {
    total_faults += sample.sw.ce_page_faults();
  }
  // Deltas over all samples equal the counter growth during sampling
  // (the counters started at zero).
  EXPECT_EQ(total_faults, system_.counters().ce_page_faults());
}

TEST_F(SessionControllerTest, TriggeredCaptureCompletesUnderLoad) {
  SessionController controller(system_, generator_, quick_config(), 1);
  const auto buffer = controller.capture_triggered(
      TriggerMode::kTransitionFromFull, 500000);
  ASSERT_TRUE(buffer.has_value());
  EXPECT_EQ(buffer->size(), 512u);
  // The first captured record is the transition itself: < 8 active.
  EXPECT_LT(buffer->front().active_count(), 8u);
}

TEST_F(SessionControllerTest, TriggeredCaptureTimesOutOnIdleSystem) {
  os::System idle_system{os::SystemConfig{}};
  workload::WorkloadMix idle_mix;
  idle_mix.mean_idle_cycles = 1e12;
  idle_mix.concurrent_job_fraction = 0.0;
  workload::WorkloadGenerator idle_generator(idle_mix, 1);
  SessionController controller(idle_system, idle_generator, quick_config(),
                               1);
  const auto buffer =
      controller.capture_triggered(TriggerMode::kAllActive, 5000);
  EXPECT_FALSE(buffer.has_value());
}

TEST_F(SessionControllerTest, RejectsTooShortInterval) {
  SamplingConfig config;
  config.interval_cycles = 100;  // cannot hold 5 x 512 acquisitions
  EXPECT_THROW(
      (SessionController{system_, generator_, config, 1}),
      ContractViolation);
}

}  // namespace
}  // namespace repro::instr
