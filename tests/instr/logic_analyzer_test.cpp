#include "instr/logic_analyzer.hpp"

#include <gtest/gtest.h>

#include "base/expect.hpp"

namespace repro::instr {
namespace {

ProbeRecord record_with_active(std::uint32_t n_active, Cycle cycle = 0) {
  ProbeRecord record;
  record.cycle = cycle;
  record.active_mask = n_active == 0 ? 0 : (1u << n_active) - 1;
  return record;
}

TEST(LogicAnalyzer, StartsDisarmed) {
  LogicAnalyzer analyzer{AnalyzerConfig{}};
  EXPECT_EQ(analyzer.state(), AnalyzerState::kDisarmed);
  EXPECT_FALSE(analyzer.sample(record_with_active(8)));
}

TEST(LogicAnalyzer, ImmediateModeCaptures512Records) {
  LogicAnalyzer analyzer{AnalyzerConfig{}};
  analyzer.arm();
  EXPECT_EQ(analyzer.state(), AnalyzerState::kCapturing);
  for (int i = 0; i < 511; ++i) {
    EXPECT_FALSE(analyzer.sample(record_with_active(3, static_cast<Cycle>(i))));
  }
  EXPECT_TRUE(analyzer.sample(record_with_active(3, 511)));
  EXPECT_TRUE(analyzer.complete());
  const auto buffer = analyzer.transfer();
  EXPECT_EQ(buffer.size(), 512u);
  EXPECT_EQ(buffer.front().cycle, 0u);
  EXPECT_EQ(buffer.back().cycle, 511u);
}

TEST(LogicAnalyzer, AllActiveTriggerWaitsForFullWidth) {
  AnalyzerConfig config;
  config.trigger = TriggerMode::kAllActive;
  config.buffer_depth = 8;
  LogicAnalyzer analyzer(config);
  analyzer.arm();
  EXPECT_EQ(analyzer.state(), AnalyzerState::kArmed);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(analyzer.sample(record_with_active(7)));
    EXPECT_EQ(analyzer.state(), AnalyzerState::kArmed);
  }
  // 8-active fires and the triggering record is captured.
  EXPECT_FALSE(analyzer.sample(record_with_active(8)));
  EXPECT_EQ(analyzer.state(), AnalyzerState::kCapturing);
  for (int i = 0; i < 7; ++i) {
    analyzer.sample(record_with_active(8));
  }
  EXPECT_TRUE(analyzer.complete());
}

TEST(LogicAnalyzer, TransitionTriggerNeedsFullThenLower) {
  AnalyzerConfig config;
  config.trigger = TriggerMode::kTransitionFromFull;
  config.buffer_depth = 4;
  LogicAnalyzer analyzer(config);
  analyzer.arm();
  // 7-active alone never fires (no prior full state).
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(analyzer.sample(record_with_active(7)));
  }
  EXPECT_EQ(analyzer.state(), AnalyzerState::kArmed);
  // Full, then still-full: no fire.
  (void)analyzer.sample(record_with_active(8));
  (void)analyzer.sample(record_with_active(8));
  EXPECT_EQ(analyzer.state(), AnalyzerState::kArmed);
  // Full -> 6: fires, captures from the transition record.
  (void)analyzer.sample(record_with_active(6, 100));
  EXPECT_EQ(analyzer.state(), AnalyzerState::kCapturing);
  (void)analyzer.sample(record_with_active(5));
  (void)analyzer.sample(record_with_active(4));
  (void)analyzer.sample(record_with_active(3));
  ASSERT_TRUE(analyzer.complete());
  const auto buffer = analyzer.transfer();
  EXPECT_EQ(buffer.front().cycle, 100u);
}

TEST(LogicAnalyzer, TransitionFromFullToIdleAlsoFires) {
  AnalyzerConfig config;
  config.trigger = TriggerMode::kTransitionFromFull;
  config.buffer_depth = 1;
  LogicAnalyzer analyzer(config);
  analyzer.arm();
  (void)analyzer.sample(record_with_active(8));
  EXPECT_TRUE(analyzer.sample(record_with_active(0)));
  EXPECT_TRUE(analyzer.complete());
}

TEST(LogicAnalyzer, RearmClearsState) {
  AnalyzerConfig config;
  config.buffer_depth = 2;
  LogicAnalyzer analyzer(config);
  analyzer.arm();
  (void)analyzer.sample(record_with_active(1, 1));
  analyzer.arm();  // re-arm mid-capture
  (void)analyzer.sample(record_with_active(2, 10));
  (void)analyzer.sample(record_with_active(2, 11));
  const auto buffer = analyzer.transfer();
  ASSERT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.front().cycle, 10u);
}

TEST(LogicAnalyzer, TransferBeforeCompleteIsContractViolation) {
  LogicAnalyzer analyzer{AnalyzerConfig{}};
  analyzer.arm();
  EXPECT_THROW((void)analyzer.transfer(), ContractViolation);
}

TEST(LogicAnalyzer, CompleteAnalyzerIgnoresSamples) {
  AnalyzerConfig config;
  config.buffer_depth = 1;
  LogicAnalyzer analyzer(config);
  analyzer.arm();
  (void)analyzer.sample(record_with_active(1, 5));
  ASSERT_TRUE(analyzer.complete());
  EXPECT_FALSE(analyzer.sample(record_with_active(2, 6)));
  const auto buffer = analyzer.transfer();
  EXPECT_EQ(buffer.front().cycle, 5u);
}

TEST(LogicAnalyzer, RejectsBadConfig) {
  AnalyzerConfig zero_depth;
  zero_depth.buffer_depth = 0;
  EXPECT_THROW(LogicAnalyzer{zero_depth}, ContractViolation);

  AnalyzerConfig wide_width;
  wide_width.full_width = 64;  // Topology ceiling: accepted.
  EXPECT_NO_THROW(LogicAnalyzer{wide_width});

  AnalyzerConfig bad_width;
  bad_width.full_width = 65;  // Past kMaxTopologyCes: rejected.
  EXPECT_THROW(LogicAnalyzer{bad_width}, ContractViolation);
}

TEST(ProbeRecord, ActiveCountPopcounts) {
  ProbeRecord record;
  record.active_mask = 0b10110001;
  EXPECT_EQ(record.active_count(), 4u);
  EXPECT_TRUE(record.ce_active(0));
  EXPECT_FALSE(record.ce_active(1));
  EXPECT_TRUE(record.ce_active(7));
}

TEST(Channels, ProbeSetFitsTheInstrument) {
  EXPECT_LE(channels_used(8, 2), kAnalyzerChannels);
}

}  // namespace
}  // namespace repro::instr
