#include "instr/das_controller.hpp"

#include <gtest/gtest.h>

namespace repro::instr {
namespace {

ProbeRecord active_record(std::uint32_t n_active) {
  ProbeRecord record;
  record.active_mask = n_active == 0 ? 0 : (1u << n_active) - 1;
  return record;
}

TEST(DasController, StartsDisarmed) {
  DasController das;
  const auto status = das.command("STATUS");
  EXPECT_TRUE(status.ok);
  EXPECT_EQ(status.text, "DISARMED");
  EXPECT_FALSE(das.on_sample_clock(active_record(8)));
}

TEST(DasController, StagesTriggerAndDepth) {
  DasController das;
  EXPECT_TRUE(das.command("TRIGGER TRANSITION").ok);
  EXPECT_TRUE(das.command("DEPTH 16").ok);
  EXPECT_TRUE(das.command("WIDTH 8").ok);
  EXPECT_EQ(das.staged_config().trigger,
            TriggerMode::kTransitionFromFull);
  EXPECT_EQ(das.staged_config().buffer_depth, 16u);
}

TEST(DasController, ImmediateAcquisitionRoundTrip) {
  DasController das;
  EXPECT_TRUE(das.command("TRIGGER IMMEDIATE").ok);
  EXPECT_TRUE(das.command("DEPTH 4").ok);
  EXPECT_TRUE(das.command("ARM").ok);
  EXPECT_EQ(das.command("STATUS").text, "CAPTURING");
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(das.on_sample_clock(active_record(3)));
  }
  EXPECT_TRUE(das.on_sample_clock(active_record(3)));
  EXPECT_EQ(das.command("STATUS").text, "COMPLETE");
  const auto xfer = das.command("XFER");
  EXPECT_TRUE(xfer.ok);
  EXPECT_EQ(xfer.text, "ACK 4 RECORDS");
  ASSERT_TRUE(das.has_transfer());
  EXPECT_EQ(das.take_transfer().size(), 4u);
  EXPECT_FALSE(das.has_transfer());
}

TEST(DasController, TransitionTriggerViaCommands) {
  DasController das;
  (void)das.command("TRIGGER TRANSITION");
  (void)das.command("DEPTH 2");
  (void)das.command("WIDTH 8");
  (void)das.command("ARM");
  EXPECT_FALSE(das.on_sample_clock(active_record(8)));
  EXPECT_EQ(das.command("STATUS").text, "ARMED");
  EXPECT_FALSE(das.on_sample_clock(active_record(5)));  // fires, 1st record
  EXPECT_EQ(das.command("STATUS").text, "CAPTURING");
  EXPECT_TRUE(das.on_sample_clock(active_record(4)));
  EXPECT_TRUE(das.acquisition_complete());
}

TEST(DasController, XferBeforeCompleteNaks) {
  DasController das;
  (void)das.command("ARM");
  const auto response = das.command("XFER");
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.text.find("NAK"), std::string::npos);
}

TEST(DasController, MalformedCommandsNakWithoutThrowing) {
  DasController das;
  EXPECT_FALSE(das.command("").ok);
  EXPECT_FALSE(das.command("TRIGGER").ok);
  EXPECT_FALSE(das.command("TRIGGER SOMETIMES").ok);
  EXPECT_FALSE(das.command("DEPTH zero").ok);
  EXPECT_FALSE(das.command("DEPTH 0").ok);
  EXPECT_FALSE(das.command("WIDTH 65").ok);
  EXPECT_FALSE(das.command("FIRE").ok);
}

TEST(DasController, CommandsAreCaseInsensitive) {
  DasController das;
  EXPECT_TRUE(das.command("trigger immediate").ok);
  EXPECT_TRUE(das.command("depth 8").ok);
  EXPECT_TRUE(das.command("arm").ok);
}

TEST(DasController, ResetDropsEverything) {
  DasController das;
  (void)das.command("TRIGGER ALLACTIVE");
  (void)das.command("DEPTH 4");
  (void)das.command("ARM");
  EXPECT_TRUE(das.command("RESET").ok);
  EXPECT_EQ(das.command("STATUS").text, "DISARMED");
  EXPECT_EQ(das.staged_config().buffer_depth, 512u);
  EXPECT_EQ(das.staged_config().trigger, TriggerMode::kImmediate);
}

TEST(DasController, RearmStartsFreshAcquisition) {
  DasController das;
  (void)das.command("DEPTH 2");
  (void)das.command("ARM");
  (void)das.on_sample_clock(active_record(1));
  (void)das.on_sample_clock(active_record(1));
  (void)das.command("XFER");
  (void)das.take_transfer();
  EXPECT_TRUE(das.command("ARM").ok);
  EXPECT_EQ(das.command("STATUS").text, "CAPTURING");
  EXPECT_FALSE(das.has_transfer());
}

}  // namespace
}  // namespace repro::instr
