#include "stats/correlation.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "base/expect.hpp"
#include "base/rng.hpp"

namespace repro::stats {
namespace {

TEST(Pearson, PerfectPositive) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y).value(), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y).value(), -1.0, 1e-12);
}

TEST(Pearson, IndependentSeriesNearZero) {
  Rng rng(5);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 5000; ++i) {
    x.push_back(rng.uniform01());
    y.push_back(rng.uniform01());
  }
  EXPECT_NEAR(pearson(x, y).value(), 0.0, 0.05);
}

TEST(Pearson, DegenerateInputIsNullopt) {
  // Undefined correlations degrade to nullopt rather than aborting the
  // run (a constant quick-preset series used to crash fx8bench).
  const std::vector<double> constant = {3, 3, 3};
  const std::vector<double> varying = {1, 2, 3};
  EXPECT_EQ(pearson(constant, varying), std::nullopt);
  EXPECT_EQ(pearson(varying, constant), std::nullopt);
  EXPECT_EQ(spearman(constant, varying), std::nullopt);
  const std::vector<double> one = {1};
  EXPECT_EQ(pearson(one, one), std::nullopt);
}

TEST(Pearson, SizeMismatchIsStillALogicError) {
  const std::vector<double> two = {1, 2};
  const std::vector<double> three = {1, 2, 3};
  EXPECT_THROW((void)pearson(two, three), ContractViolation);
}

TEST(CorrelationMatrix, DegenerateSeriesRendersNa) {
  std::vector<Series> series = {
      {"flat", {2.0, 2.0, 2.0}},
      {"vary", {1.0, 2.0, 3.0}},
  };
  const std::string text = render_correlation_matrix(series);
  EXPECT_NE(text.find("n/a"), std::string::npos);
  EXPECT_NE(text.find("1.000"), std::string::npos);  // vary x vary
}

TEST(Spearman, MonotoneNonlinearIsPerfect) {
  // y = x^3 is nonlinear but monotone: Spearman 1, Pearson < 1.
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 1; i <= 20; ++i) {
    x.push_back(i);
    y.push_back(static_cast<double>(i) * i * i);
  }
  EXPECT_NEAR(spearman(x, y).value(), 1.0, 1e-12);
  EXPECT_LT(pearson(x, y).value(), 1.0);
}

TEST(Spearman, HandlesTies) {
  const std::vector<double> x = {1, 2, 2, 3};
  const std::vector<double> y = {10, 20, 20, 30};
  EXPECT_NEAR(spearman(x, y).value(), 1.0, 1e-12);
}

TEST(CorrelationMatrix, RendersSymmetricMatrix) {
  std::vector<Series> series = {
      {"cw", {0.1, 0.5, 0.9, 0.3}},
      {"miss", {0.001, 0.01, 0.02, 0.004}},
      {"pc", {7.0, 7.5, 7.9, 7.2}},
  };
  const std::string text = render_correlation_matrix(series);
  EXPECT_NE(text.find("cw"), std::string::npos);
  EXPECT_NE(text.find("miss"), std::string::npos);
  EXPECT_NE(text.find("1.000"), std::string::npos);  // diagonal
}

TEST(CorrelationMatrix, NeedsTwoSeries) {
  std::vector<Series> one = {{"x", {1, 2, 3}}};
  EXPECT_THROW((void)render_correlation_matrix(one), ContractViolation);
}

}  // namespace
}  // namespace repro::stats
