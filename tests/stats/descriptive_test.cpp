#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "base/expect.hpp"

namespace repro::stats {
namespace {

TEST(Descriptive, Mean) {
  const std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Descriptive, MeanOfEmptyThrows) {
  const std::vector<double> v;
  EXPECT_THROW((void)mean(v), ContractViolation);
}

TEST(Descriptive, VarianceAndStddev) {
  const std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  ASSERT_TRUE(variance(v).has_value());
  EXPECT_NEAR(*variance(v), 4.571428, 1e-5);
  EXPECT_NEAR(*stddev(v), 2.13809, 1e-4);
}

TEST(Descriptive, VarianceNeedsTwoValues) {
  // n < 2 has no dispersion estimate: nullopt, not a silent zero.
  const std::vector<double> one = {42.0};
  EXPECT_FALSE(variance(one).has_value());
  EXPECT_FALSE(stddev(one).has_value());
  const std::vector<double> none;
  EXPECT_FALSE(variance(none).has_value());
  EXPECT_FALSE(stddev(none).has_value());
}

TEST(Descriptive, MedianOddAndEven) {
  const std::vector<double> odd = {3, 1, 2};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const std::vector<double> even = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Descriptive, QuantileInterpolates) {
  const std::vector<double> v = {0, 10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 10.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.125), 5.0);
}

TEST(Descriptive, QuantileRejectsBadQ) {
  const std::vector<double> v = {1.0};
  EXPECT_THROW((void)quantile(v, 1.5), ContractViolation);
}

TEST(Descriptive, MinMax) {
  const std::vector<double> v = {3, -1, 7, 2};
  EXPECT_DOUBLE_EQ(min_of(v), -1.0);
  EXPECT_DOUBLE_EQ(max_of(v), 7.0);
}

TEST(Descriptive, QuantileDoesNotMutateInput) {
  const std::vector<double> v = {3, 1, 2};
  (void)median(v);
  EXPECT_EQ(v[0], 3.0);
}

}  // namespace
}  // namespace repro::stats
