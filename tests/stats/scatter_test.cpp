#include "stats/scatter.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "base/expect.hpp"

namespace repro::stats {
namespace {

TEST(Scatter, SinglePointRendersAsA) {
  const std::vector<double> x = {0.5};
  const std::vector<double> y = {0.5};
  ScatterOptions options;
  const std::string plot = render_scatter(x, y, options);
  EXPECT_NE(plot.find('A'), std::string::npos);
  EXPECT_EQ(plot.find('B'), std::string::npos);
}

TEST(Scatter, CoincidentPointsEscalateLetters) {
  const std::vector<double> x = {0.5, 0.5, 0.5};
  const std::vector<double> y = {0.5, 0.5, 0.5};
  ScatterOptions options;
  options.x_min = 0.0;
  options.x_max = 1.0;
  options.y_min = 0.0;
  options.y_max = 1.0;
  const std::string plot = render_scatter(x, y, options);
  EXPECT_NE(plot.find('C'), std::string::npos);  // 3 observations
  EXPECT_EQ(plot.find('A'), std::string::npos);
}

TEST(Scatter, PointsOutsideFixedBoundsDropped) {
  const std::vector<double> x = {0.5, 5.0};
  const std::vector<double> y = {0.5, 5.0};
  ScatterOptions options;
  options.x_min = 0.0;
  options.x_max = 1.0;
  options.y_min = 0.0;
  options.y_max = 1.0;
  const std::string plot = render_scatter(x, y, options);
  // Only one in-bounds point: exactly one 'A'.
  std::size_t count = 0;
  for (const char c : plot) {
    count += c == 'A';
  }
  EXPECT_EQ(count, 1u);
}

TEST(Scatter, TitleAndLabelsAppear) {
  const std::vector<double> x = {0.1};
  const std::vector<double> y = {0.2};
  ScatterOptions options;
  options.title = "Missrate vs Cw";
  options.x_label = std::string{"Cw"};
  options.y_label = std::string{"missrate"};
  const std::string plot = render_scatter(x, y, options);
  EXPECT_NE(plot.find("Missrate vs Cw"), std::string::npos);
  EXPECT_NE(plot.find("Cw"), std::string::npos);
  EXPECT_NE(plot.find("missrate"), std::string::npos);
}

TEST(Scatter, EmptyInputGivesEmptyFrame) {
  const std::vector<double> none;
  ScatterOptions options;
  EXPECT_NO_THROW((void)render_scatter(none, none, options));
}

TEST(Scatter, MismatchedSizesThrow) {
  const std::vector<double> x = {1.0};
  const std::vector<double> y = {1.0, 2.0};
  EXPECT_THROW((void)render_scatter(x, y, ScatterOptions{}),
               ContractViolation);
}

TEST(Scatter, DegenerateAreaThrows) {
  const std::vector<double> x = {1.0};
  ScatterOptions options;
  options.width = 2;
  EXPECT_THROW((void)render_scatter(x, x, options), ContractViolation);
}

TEST(Curve, RendersMonotoneCurve) {
  ScatterOptions options;
  options.title = "model";
  const std::string plot =
      render_curve(0.0, 1.0, 20, [](double x) { return x * x; }, options);
  EXPECT_NE(plot.find('A'), std::string::npos);
  EXPECT_NE(plot.find("model"), std::string::npos);
}

TEST(Curve, RejectsBadRange) {
  EXPECT_THROW((void)render_curve(1.0, 1.0, 10, [](double) { return 0.0; },
                                  ScatterOptions{}),
               ContractViolation);
  EXPECT_THROW((void)render_curve(0.0, 1.0, 1, [](double) { return 0.0; },
                                  ScatterOptions{}),
               ContractViolation);
}

}  // namespace
}  // namespace repro::stats
