#include "stats/regression.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "base/expect.hpp"
#include "base/rng.hpp"

namespace repro::stats {
namespace {

TEST(SolveLinear, SolvesKnownSystem) {
  // 2x + y = 5; x + 3y = 10  ->  x = 1, y = 3.
  const std::vector<double> a = {2, 1, 1, 3};
  const std::vector<double> b = {5, 10};
  const auto z = solve_linear(a, b);
  ASSERT_TRUE(z.has_value());
  ASSERT_EQ(z->size(), 2u);
  EXPECT_NEAR((*z)[0], 1.0, 1e-12);
  EXPECT_NEAR((*z)[1], 3.0, 1e-12);
}

TEST(SolveLinear, PivotsForStability) {
  // Leading zero forces a row swap.
  const std::vector<double> a = {0, 1, 1, 0};
  const std::vector<double> b = {2, 3};
  const auto z = solve_linear(a, b);
  ASSERT_TRUE(z.has_value());
  EXPECT_NEAR((*z)[0], 3.0, 1e-12);
  EXPECT_NEAR((*z)[1], 2.0, 1e-12);
}

TEST(SolveLinear, SingularMatrixIsNullopt) {
  const std::vector<double> a = {1, 2, 2, 4};
  const std::vector<double> b = {1, 2};
  EXPECT_FALSE(solve_linear(a, b).has_value());
}

TEST(FitPolynomial, RecoversExactLine) {
  const std::vector<double> x = {0, 1, 2, 3};
  const std::vector<double> y = {1, 3, 5, 7};  // y = 1 + 2x
  const auto fit = fit_polynomial(x, y, 1);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->coeffs[0], 1.0, 1e-9);
  EXPECT_NEAR(fit->coeffs[1], 2.0, 1e-9);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
}

TEST(FitPolynomial, RecoversExactQuadratic) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i <= 10; ++i) {
    const double xi = i / 10.0;
    x.push_back(xi);
    y.push_back(0.5 - 1.5 * xi + 2.0 * xi * xi);
  }
  const auto fit = fit_polynomial(x, y, 2);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->coeffs[0], 0.5, 1e-9);
  EXPECT_NEAR(fit->coeffs[1], -1.5, 1e-9);
  EXPECT_NEAR(fit->coeffs[2], 2.0, 1e-9);
}

TEST(FitPolynomial, NoisyQuadraticGetsGoodR2) {
  Rng rng(17);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double xi = rng.uniform01();
    x.push_back(xi);
    y.push_back(3.0 * xi * xi + rng.normal(0.0, 0.05));
  }
  const auto fit = fit_polynomial(x, y, 2);
  ASSERT_TRUE(fit.has_value());
  EXPECT_GT(fit->r_squared, 0.9);
  EXPECT_NEAR(fit->coeffs[2], 3.0, 0.3);
}

TEST(FitPolynomial, PureNoiseGetsLowR2) {
  Rng rng(19);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    x.push_back(rng.uniform01());
    y.push_back(rng.normal(0.0, 1.0));
  }
  const auto fit = fit_polynomial(x, y, 2);
  ASSERT_TRUE(fit.has_value());
  EXPECT_LT(fit->r_squared, 0.1);
}

TEST(FitPolynomial, EvaluateMatchesCoefficients) {
  PolyFit fit;
  fit.coeffs = {1.0, -2.0, 0.5};
  EXPECT_DOUBLE_EQ(fit(2.0), 1.0 - 4.0 + 2.0);
}

TEST(FitPolynomial, TooFewPointsAreNullopt) {
  const std::vector<double> x = {1, 2};
  const std::vector<double> y = {1, 2};
  EXPECT_FALSE(fit_polynomial(x, y, 2).has_value());
}

TEST(FitPolynomial, ZeroXVarianceIsNullopt) {
  // Every x identical: the normal-equation matrix is singular and the
  // fit must report "no model" instead of leaking NaN/Inf coefficients.
  const std::vector<double> x = {2.0, 2.0, 2.0, 2.0};
  const std::vector<double> y = {1.0, 2.0, 3.0, 4.0};
  EXPECT_FALSE(fit_polynomial(x, y, 1).has_value());
  EXPECT_FALSE(fit_polynomial(x, y, 2).has_value());
}

TEST(MedianByMidpoint, BinsAndTakesMedians) {
  const std::vector<double> x = {0.0, 0.05, 0.1, 0.9, 1.0};
  const std::vector<double> y = {1.0, 3.0, 2.0, 10.0, 20.0};
  const std::vector<double> mids = {0.0, 0.5, 1.0};
  const auto medians = median_by_midpoint(x, y, mids);
  // Bin 0.0 holds {1,3,2} -> 2; bin 0.5 empty (skipped); bin 1.0 -> 15.
  ASSERT_EQ(medians.size(), 2u);
  EXPECT_DOUBLE_EQ(medians[0].first, 0.0);
  EXPECT_DOUBLE_EQ(medians[0].second, 2.0);
  EXPECT_DOUBLE_EQ(medians[1].first, 1.0);
  EXPECT_DOUBLE_EQ(medians[1].second, 15.0);
}

TEST(FitMedianModel, PipelineMatchesPaperShape) {
  // A synthetic "miss rate" rising quadratically with Cw plus outliers;
  // the median binning suppresses the outliers.
  Rng rng(23);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 400; ++i) {
    const double cw = rng.uniform01();
    double miss = 0.002 + 0.02 * cw * cw + rng.normal(0.0, 0.001);
    if (rng.bernoulli(0.05)) {
      miss += 0.1;  // outlier
    }
    x.push_back(cw);
    y.push_back(miss);
  }
  std::vector<double> mids;
  for (int i = 0; i <= 10; ++i) {
    mids.push_back(i / 10.0);
  }
  const auto fit = fit_median_model(x, y, mids);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->coeffs[2], 0.02, 0.01);
  EXPECT_GT(fit->r_squared, 0.85);
}

TEST(FitMedianModel, TooFewBinsAreNullopt) {
  const std::vector<double> x = {0.0, 0.0, 1.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  const std::vector<double> mids = {0.0, 1.0};
  EXPECT_FALSE(fit_median_model(x, y, mids).has_value());
}

}  // namespace
}  // namespace repro::stats
