#include "stats/freq_table.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "base/expect.hpp"

namespace repro::stats {
namespace {

TEST(FreqTable, NearestMidpointPicksClosest) {
  const std::vector<double> mids = {0.0, 0.5, 1.0};
  EXPECT_EQ(nearest_midpoint(0.1, mids), 0u);
  EXPECT_EQ(nearest_midpoint(0.4, mids), 1u);
  EXPECT_EQ(nearest_midpoint(0.9, mids), 2u);
  EXPECT_EQ(nearest_midpoint(-5.0, mids), 0u);
  EXPECT_EQ(nearest_midpoint(5.0, mids), 2u);
}

TEST(FreqTable, FromValuesBinsAndCumulates) {
  const std::vector<double> values = {0.0, 0.05, 0.48, 0.52, 1.0};
  const std::vector<double> mids = {0.0, 0.5, 1.0};
  const FreqTable table = FreqTable::from_values(values, mids, 1);
  ASSERT_EQ(table.rows().size(), 3u);
  EXPECT_EQ(table.rows()[0].freq, 2u);
  EXPECT_EQ(table.rows()[1].freq, 2u);
  EXPECT_EQ(table.rows()[2].freq, 1u);
  EXPECT_EQ(table.rows()[2].cum_freq, 5u);
  EXPECT_DOUBLE_EQ(table.rows()[0].percent, 40.0);
  EXPECT_DOUBLE_EQ(table.rows()[2].cum_percent, 100.0);
  EXPECT_EQ(table.total(), 5u);
}

TEST(FreqTable, FromCountsKeepsLabels) {
  const std::vector<std::uint64_t> counts = {5, 0, 3};
  const std::vector<std::string> labels = {"8", "7", "6"};
  const FreqTable table = FreqTable::from_counts(counts, labels);
  EXPECT_EQ(table.rows()[0].label, "8");
  EXPECT_EQ(table.rows()[1].freq, 0u);
  EXPECT_EQ(table.total(), 8u);
}

TEST(FreqTable, MedianRowFindsMiddleMass) {
  const std::vector<std::uint64_t> counts = {1, 1, 10, 1};
  const std::vector<std::string> labels = {"a", "b", "c", "d"};
  const FreqTable table = FreqTable::from_counts(counts, labels);
  EXPECT_EQ(table.median_row(), 2u);
}

TEST(FreqTable, MedianRowOfEmptyThrows) {
  const std::vector<std::uint64_t> counts = {0, 0};
  const std::vector<std::string> labels = {"a", "b"};
  const FreqTable table = FreqTable::from_counts(counts, labels);
  EXPECT_THROW((void)table.median_row(), ContractViolation);
}

TEST(FreqTable, RenderHasBarsAndColumns) {
  const std::vector<std::uint64_t> counts = {4, 2};
  const std::vector<std::string> labels = {"hi", "lo"};
  const std::string text =
      FreqTable::from_counts(counts, labels).render(10);
  EXPECT_NE(text.find("**********"), std::string::npos);  // full bar
  EXPECT_NE(text.find("*****"), std::string::npos);       // half bar
  EXPECT_NE(text.find("FREQ"), std::string::npos);
  EXPECT_NE(text.find("CUM.PCT"), std::string::npos);
  EXPECT_NE(text.find("TOTAL: 6"), std::string::npos);
}

TEST(FreqTable, RenderOfEmptyTableIsSafe) {
  const std::vector<std::uint64_t> counts = {0};
  const std::vector<std::string> labels = {"x"};
  EXPECT_NO_THROW((void)FreqTable::from_counts(counts, labels).render());
}

TEST(FreqTable, MismatchedCountsAndLabelsThrow) {
  const std::vector<std::uint64_t> counts = {1, 2};
  const std::vector<std::string> labels = {"only-one"};
  EXPECT_THROW((void)FreqTable::from_counts(counts, labels),
               ContractViolation);
}

}  // namespace
}  // namespace repro::stats
