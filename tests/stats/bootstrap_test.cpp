#include "stats/bootstrap.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "base/expect.hpp"
#include "stats/descriptive.hpp"

namespace repro::stats {
namespace {

TEST(Bootstrap, PointEstimateMatchesStatistic) {
  const std::vector<double> values = {1, 2, 3, 4, 5};
  Rng rng(1);
  const ConfidenceInterval ci = bootstrap_mean_ci(values, rng);
  EXPECT_DOUBLE_EQ(ci.point, 3.0);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
}

TEST(Bootstrap, IntervalCoversTrueMeanForNormalData) {
  Rng data_rng(5);
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) {
    values.push_back(data_rng.normal(10.0, 2.0));
  }
  Rng rng(7);
  const ConfidenceInterval ci = bootstrap_mean_ci(values, rng);
  EXPECT_LT(ci.lo, 10.0 + 0.5);
  EXPECT_GT(ci.hi, 10.0 - 0.5);
  // Width should be roughly 4*sigma/sqrt(n) ~ 0.55.
  EXPECT_LT(ci.hi - ci.lo, 1.2);
  EXPECT_GT(ci.hi - ci.lo, 0.2);
}

TEST(Bootstrap, WiderLevelGivesWiderInterval) {
  Rng data_rng(9);
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) {
    values.push_back(data_rng.uniform01());
  }
  Rng rng_a(11);
  Rng rng_b(11);
  const ConfidenceInterval narrow =
      bootstrap_mean_ci(values, rng_a, 0.80);
  const ConfidenceInterval wide = bootstrap_mean_ci(values, rng_b, 0.99);
  EXPECT_LT(narrow.hi - narrow.lo, wide.hi - wide.lo);
}

TEST(Bootstrap, MedianCiOnSkewedData) {
  // Heavily skewed: median is robust, CI should sit near the bulk.
  std::vector<double> values;
  for (int i = 0; i < 99; ++i) {
    values.push_back(1.0);
  }
  values.push_back(1000.0);
  Rng rng(13);
  const ConfidenceInterval ci = bootstrap_median_ci(values, rng);
  EXPECT_DOUBLE_EQ(ci.point, 1.0);
  EXPECT_LT(ci.hi, 10.0);
}

TEST(Bootstrap, CustomStatisticWorks) {
  const std::vector<double> values = {1, 2, 3, 4, 100};
  Rng rng(17);
  const ConfidenceInterval ci = bootstrap_ci(
      values, [](std::span<const double> v) { return max_of(v); }, rng);
  EXPECT_DOUBLE_EQ(ci.point, 100.0);
  EXPECT_LE(ci.hi, 100.0);
}

TEST(Bootstrap, RejectsBadArguments) {
  const std::vector<double> values = {1.0, 2.0};
  const std::vector<double> empty;
  Rng rng(1);
  EXPECT_THROW((void)bootstrap_mean_ci(empty, rng), ContractViolation);
  EXPECT_THROW((void)bootstrap_mean_ci(values, rng, 1.5),
               ContractViolation);
  EXPECT_THROW((void)bootstrap_mean_ci(values, rng, 0.95, 10),
               ContractViolation);
}

TEST(Bootstrap, DeterministicForSeed) {
  const std::vector<double> values = {3, 1, 4, 1, 5, 9, 2, 6};
  Rng rng_a(42);
  Rng rng_b(42);
  const ConfidenceInterval a = bootstrap_mean_ci(values, rng_a);
  const ConfidenceInterval b = bootstrap_mean_ci(values, rng_b);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(Bootstrap, BitIdenticalAcrossThreadCounts) {
  // Replicate streams split from the base seed: the interval cannot
  // depend on how many workers computed the replicates.
  Rng data_rng(21);
  std::vector<double> values;
  for (int i = 0; i < 150; ++i) {
    values.push_back(data_rng.normal(5.0, 1.5));
  }
  Rng rng_serial(42);
  Rng rng_pooled(42);
  Rng rng_wide(42);
  const ConfidenceInterval serial =
      bootstrap_mean_ci(values, rng_serial, 0.95, 1000, 1);
  const ConfidenceInterval pooled =
      bootstrap_mean_ci(values, rng_pooled, 0.95, 1000, 4);
  const ConfidenceInterval wide =
      bootstrap_mean_ci(values, rng_wide, 0.95, 1000, 16);
  EXPECT_EQ(serial.lo, pooled.lo);
  EXPECT_EQ(serial.hi, pooled.hi);
  EXPECT_EQ(serial.lo, wide.lo);
  EXPECT_EQ(serial.hi, wide.hi);
}

TEST(Bootstrap, MedianBitIdenticalAcrossThreadCounts) {
  const std::vector<double> values = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5};
  Rng rng_serial(7);
  Rng rng_pooled(7);
  const ConfidenceInterval serial =
      bootstrap_median_ci(values, rng_serial, 0.9, 500, 1);
  const ConfidenceInterval pooled =
      bootstrap_median_ci(values, rng_pooled, 0.9, 500, 8);
  EXPECT_EQ(serial.lo, pooled.lo);
  EXPECT_EQ(serial.hi, pooled.hi);
}

}  // namespace
}  // namespace repro::stats
